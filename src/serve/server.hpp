// MappingServer — the always-on mapping service (ROADMAP item 1): a
// long-lived process that loads the frozen index once (via MappingService)
// and serves mapping requests over a local HTTP/1.1 socket.
//
// Pipeline, in the same shape as the streaming engine (reader -> bounded
// queue -> workers -> in-order emit), but request-oriented:
//
//   acceptor thread ──try-push──► admission queue ──► worker threads
//        │ (full? shed: 503 + Retry-After)               │ parse + route
//        ▼                                               ▼
//   connections never stall the listener         /map: bounded work queue
//                                                        │
//                                                micro-batcher thread
//                                                (coalesce ≤ max_batch or
//                                                 batch_window, then one
//                                                 MappingService::map_batch
//                                                 with a warm scratch)
//
// Admission control: the accept queue is a util::BoundedQueue; a full queue
// sheds the connection immediately with `503 Service Unavailable` and a
// `Retry-After` header — overload degrades to fast rejections, never to an
// unbounded backlog or a stalled accept loop. The /map work queue is
// likewise bounded; a full work queue sheds with 503 at the worker.
//
// Deadlines: every /map request carries an absolute expiry (its
// `deadline_ms` or the server default), measured from admission. Expiry is
// checked before the (uninterruptible) map kernel runs, riding the same
// timed-queue-op machinery as the engine's stage_timeout, and surfaces as a
// structured `504` JSON body — the HTTP projection of kDeadlineExceeded.
//
// Caching: responses for repeated (sequence, top_x, min_votes) keys come
// from an LruCache keyed by the full composite key (digest picks the
// bucket, byte-compare confirms — collision-safe).
//
// Fault injection (docs/robustness.md): when ServerConfig::fault_plan is
// set, the pipeline queries a util::FaultInjector at five named sites —
// serve.accept, serve.read, serve.write, serve.batch, serve.cache — mapping
// the plan's delay/drop/abort taxonomy onto network failure modes:
// injected latency, connection resets, truncated responses, dropped
// batches, and worker/batcher thread aborts. Every decision is keyed by
// (site, invocation) so the same seed replays the same schedule.
//
// Supervision: worker and batcher threads run under a supervisor. A thread
// that dies (injected abort or a genuine bug) has its in-flight requests
// failed with structured 500s — never hung futures — is joined, and is
// respawned while the server keeps serving; /healthz reports the restart
// counts.
//
// Hot swap: reload_index() (HTTP: POST /admin/reload; CLI: SIGHUP) loads a
// new JEMIDX1 artifact in the background, validates it against the running
// params fingerprint and subject set (core::index_serde's structured
// errors), then atomically publishes a new MappingService epoch behind a
// shared_ptr. In-flight requests finish on the index they started with;
// the response cache is invalidated only after a successful swap. A
// corrupt or mismatched artifact leaves the old index serving and surfaces
// the ArtifactError text — zero downtime either way.
//
// Endpoints:
//   POST /map            body = query bases; ?top_x=&min_votes=&deadline_ms=
//   GET  /healthz        liveness + provenance + windowed SLO percentiles
//   GET  /metrics        JSON by default; OpenMetrics text under
//                        `Accept: application/openmetrics-text`
//   GET  /debug/requests flight-recorder ring (newest-first JSON;
//                        ?status=&min_latency_ms=&limit=)
//   POST /admin/reload   hot-swap the index (?path= overrides the default)
//
// Observability (docs/observability.md): per-endpoint latency histograms,
// queue-depth and cache gauges, shed/deadline/reject counters, chaos
// tallies, supervisor restart counts and the index epoch in the registry;
// per-request trace propagation (W3C `traceparent` in, `x-jem-request-id`
// out, ids stamped on every log line, error body and tracer span); a
// flight-recorder ring of per-request timing records; and sliding-window
// latency/error/shed SLOs behind /healthz and the OpenMetrics exposition.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/service.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "obs/window.hpp"
#include "serve/flight_recorder.hpp"
#include "serve/http.hpp"
#include "serve/lru_cache.hpp"
#include "util/bounded_queue.hpp"
#include "util/fault_plan.hpp"
#include "util/log.hpp"

namespace jem::serve {

/// Fatal server-lifecycle failure (bind/listen/thread start). Per-request
/// conditions never throw this — they become HTTP status codes.
class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral (read the bound port via port())

  std::size_t workers = 4;           // connection-handling threads
  std::size_t queue_capacity = 64;   // admission (accepted-connection) queue
  std::size_t work_capacity = 256;   // /map work queue feeding the batcher

  /// Micro-batching: the batcher takes the first in-flight request, then
  /// coalesces up to `max_batch` total, waiting at most `batch_window` for
  /// stragglers, and maps them in one warm-scratch MappingService batch.
  std::size_t max_batch = 16;
  std::chrono::microseconds batch_window{200};

  /// Applied to /map requests that carry no deadline_ms. zero = none.
  std::chrono::milliseconds default_deadline{0};

  /// Socket receive/send timeout — a stalled client cannot pin a worker.
  std::chrono::milliseconds io_timeout{5000};

  std::size_t cache_capacity = 1024;  // LRU entries; 0 disables the cache
  int retry_after_s = 1;              // Retry-After hint on 503 sheds

  /// Metrics registry the server publishes to and /metrics serves. Null =
  /// the server owns a private registry.
  obs::Registry* metrics = nullptr;

  /// Span tracer for per-request span trees (client/request/queue-wait/
  /// batch/map/serialize, all tagged with the request's trace id). Null =
  /// no tracing; the request path then skips every span allocation.
  obs::Tracer* tracer = nullptr;

  /// Flight-recorder ring capacity (per-request records behind
  /// GET /debug/requests). 0 disables the recorder and the endpoint.
  std::size_t flight_recorder_size = 256;

  /// Requests slower than this are logged as slow-request exemplars with
  /// their full span breakdown (queue-wait/map/serialize). 0 = disabled.
  /// Microsecond granularity so tests can arm it below real map latency.
  std::chrono::microseconds slow_threshold{0};

  /// Aging granularity of the windowed SLO metrics: /healthz's "10s"/"1m"/
  /// "5m" tiers cover 10/60/300 frames of this width. The production
  /// default (1 s) makes the labels literal; tests shrink it to script
  /// decay quickly.
  std::chrono::milliseconds slo_frame{1000};

  /// Deterministic network chaos: when set (and non-empty), the serve.*
  /// fault sites consult this plan. Not owned; must outlive the server.
  const util::FaultPlan* fault_plan = nullptr;

  /// Default artifact path for /admin/reload without ?path= and for the
  /// CLI's SIGHUP handler. Empty = reload requires an explicit path.
  std::string reload_index_path;

  /// Test-only gate invoked by the batcher before mapping each micro-batch
  /// (lets tests hold the pipeline to force queue-full and deadline paths).
  std::function<void()> batch_hook;
};

class MappingServer {
 public:
  using Clock = core::MappingService::Clock;

  /// Non-owning: the service must outlive the server. Hot-swap is still
  /// available — the original service simply remains owned by the caller
  /// while new epochs are owned by the server.
  MappingServer(const core::MappingService& service, ServerConfig config);

  /// Owning (shared): the server participates in the service's lifetime,
  /// the natural shape when reload_index() will retire epochs.
  MappingServer(std::shared_ptr<const core::MappingService> service,
                ServerConfig config);
  ~MappingServer();

  MappingServer(const MappingServer&) = delete;
  MappingServer& operator=(const MappingServer&) = delete;

  /// Binds, listens and starts the acceptor/worker/batcher/supervisor
  /// threads. Throws ServeError on bind/listen failure. Idempotent once
  /// running.
  void start();

  /// Graceful drain: stop accepting, serve every admitted connection and
  /// queued request, join all threads. Idempotent; also run by ~MappingServer.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Bound port (after start(); the ephemeral port when config.port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// The registry /metrics serves (the configured one or the private one).
  [[nodiscard]] obs::Registry& registry() noexcept { return *registry_; }

  /// The routing core, socket-free: exactly what a worker runs after
  /// parsing a request. /map routes through the live micro-batcher, so the
  /// server must be start()ed. Exposed for in-process callers and tests.
  [[nodiscard]] HttpResponse handle(const HttpRequest& request);

  /// Result of one hot-swap attempt.
  struct ReloadOutcome {
    bool success = false;
    std::uint64_t epoch = 0;   // the serving epoch after the attempt
    std::string error;         // ArtifactError text when !success
  };

  /// Loads the JEMIDX1 artifact at `path` (empty = the configured
  /// reload_index_path), validates it against the running parameters and
  /// subject set, and atomically swaps the serving epoch. In-flight
  /// requests finish on their original index; the LRU cache is cleared
  /// only on success. On any validation/IO failure the old index keeps
  /// serving and the structured error text is returned. Thread-safe;
  /// concurrent reloads serialize.
  [[nodiscard]] ReloadOutcome reload_index(const std::string& path);

  /// Serving epoch: 0 at start, +1 per successful reload.
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Supervisor tallies (threads respawned after an abort).
  [[nodiscard]] std::uint64_t worker_restarts() const noexcept {
    return worker_restarts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t batcher_restarts() const noexcept {
    return batcher_restarts_.load(std::memory_order_relaxed);
  }

  /// The flight-recorder ring (never null when flight_recorder_size > 0;
  /// null otherwise). Exposed for the SIGUSR1 dump and tests.
  [[nodiscard]] const FlightRecorder* flight_recorder() const noexcept {
    return flight_.get();
  }

  /// Human-readable flight-recorder dump (the SIGUSR1 payload). Empty
  /// string when the recorder is disabled.
  [[nodiscard]] std::string flight_recorder_text(std::size_t limit = 64) const;

 private:
  /// What the batcher hands back per request, alongside the response:
  /// the timings and batch id the flight record and spans need.
  struct BatchedResult {
    core::MapServiceResponse response;
    std::uint64_t queue_wait_ns = 0;
    std::uint64_t map_ns = 0;
    std::uint64_t batch_id = 0;
  };

  struct PendingMap {
    core::MapServiceRequest request;
    Clock::time_point deadline = Clock::time_point::max();
    Clock::time_point enqueued{};
    std::string trace_id;           ///< For batcher-side span naming.
    std::uint64_t enqueue_trace_ns = 0;  ///< Tracer clock at enqueue (0 = off).
    std::promise<BatchedResult> promise;
  };

  /// Per-request observability state threaded through handle().
  struct RequestContext {
    obs::TraceContext trace;  ///< Server ids: trace_id + fresh request span id.
    Clock::time_point start{};
    FlightRecord record;
  };

  /// Supervisor slot id of the batcher (workers use their vector index).
  static constexpr std::size_t kBatcherSlot = ~static_cast<std::size_t>(0);

  void acceptor_loop();
  void worker_main(std::size_t slot);
  void worker_loop();
  void batcher_main();
  void batcher_loop();
  void supervisor_loop();
  void note_death(std::size_t slot);
  void serve_connection(int fd);

  /// Current serving epoch (never null once constructed).
  [[nodiscard]] std::shared_ptr<const core::MappingService> current_service()
      const;

  [[nodiscard]] HttpResponse handle_map(const HttpRequest& request,
                                        RequestContext& ctx);
  [[nodiscard]] HttpResponse handle_healthz();
  [[nodiscard]] HttpResponse handle_metrics(const HttpRequest& request);
  [[nodiscard]] HttpResponse handle_debug_requests(const HttpRequest& request);
  [[nodiscard]] HttpResponse handle_reload(const HttpRequest& request);

  /// Windowed SLO section of /healthz ("slo":{...}) — shared with the
  /// OpenMetrics exposition via slo_openmetrics().
  [[nodiscard]] std::string slo_json();
  [[nodiscard]] std::string slo_openmetrics();

  /// Fails every promise of `batch` with a structured internal failure.
  static void fail_batch(std::vector<PendingMap>& batch,
                         std::string_view message);

  ServerConfig config_;

  mutable std::mutex service_mutex_;  // guards the service_ pointer only
  std::shared_ptr<const core::MappingService> service_;

  std::mutex reload_mutex_;  // serializes reload_index()
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> reloads_{0};

  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_ = nullptr;

  // Metric handles (resolved once; updates are lock-free).
  obs::Counter* requests_total_ = nullptr;
  obs::Counter* responses_2xx_ = nullptr;
  obs::Counter* responses_4xx_ = nullptr;
  obs::Counter* responses_5xx_ = nullptr;
  obs::Counter* shed_total_ = nullptr;
  obs::Counter* deadline_expired_ = nullptr;
  obs::Counter* cache_hits_ = nullptr;
  obs::Counter* cache_misses_ = nullptr;
  obs::Counter* cache_evictions_ = nullptr;
  obs::Counter* batches_total_ = nullptr;
  obs::Counter* rejected_head_ = nullptr;
  obs::Counter* rejected_body_ = nullptr;
  obs::Counter* rejected_malformed_ = nullptr;
  obs::Counter* chaos_delay_ = nullptr;
  obs::Counter* chaos_reset_ = nullptr;
  obs::Counter* chaos_partial_ = nullptr;
  obs::Counter* chaos_abort_ = nullptr;
  obs::Counter* chaos_cache_bypass_ = nullptr;
  obs::Counter* chaos_batch_drop_ = nullptr;
  obs::Counter* reload_success_ = nullptr;
  obs::Counter* reload_rejected_ = nullptr;
  obs::Counter* restarts_worker_ = nullptr;
  obs::Counter* restarts_batcher_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Gauge* work_depth_ = nullptr;
  obs::Gauge* cache_size_ = nullptr;
  obs::Gauge* epoch_gauge_ = nullptr;
  obs::Histogram* map_latency_ns_ = nullptr;
  obs::Histogram* healthz_latency_ns_ = nullptr;
  obs::Histogram* metrics_latency_ns_ = nullptr;
  obs::Histogram* batch_size_ = nullptr;

  util::FaultInjector injector_;

  // Request-scoped observability (docs/observability.md).
  std::unique_ptr<FlightRecorder> flight_;
  obs::WindowedHistogram win_latency_;   // /map total latency per request
  obs::WindowedCounter win_requests_;    // /map requests
  obs::WindowedCounter win_errors_;      // /map 5xx (excluding sheds)
  obs::WindowedCounter win_shed_;        // 503 sheds (worker + acceptor)
  std::atomic<std::uint64_t> next_batch_id_{0};
  util::LogRateLimiter worker_died_limit_;
  util::LogRateLimiter batcher_died_limit_;

  /// Synthetic tracer track carrying per-request queue-wait/batch/map spans
  /// recorded with explicit times (the batcher thread owns the wall time
  /// but the spans belong to requests, not to it).
  static constexpr std::uint32_t kRequestTrack = 0xFFFF0000u;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> accepting_{false};

  std::unique_ptr<util::BoundedQueue<int>> conn_queue_;
  std::unique_ptr<util::BoundedQueue<PendingMap>> work_queue_;

  std::mutex cache_mutex_;
  std::unique_ptr<LruCache<std::string, core::MapServiceResponse>> cache_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::thread batcher_;

  // Supervisor state: dead slots awaiting join/respawn, plus the drain
  // bookkeeping stop() waits on. All guarded by lifecycle_mutex_.
  std::mutex lifecycle_mutex_;
  std::condition_variable death_cv_;    // supervisor wakes on deaths
  std::condition_variable drained_cv_;  // stop() waits for worker drain
  std::vector<std::size_t> dead_;
  bool supervising_ = false;
  bool respawn_enabled_ = false;
  std::size_t workers_active_ = 0;
  std::size_t respawn_in_flight_ = 0;
  std::thread supervisor_;
  std::atomic<std::uint64_t> worker_restarts_{0};
  std::atomic<std::uint64_t> batcher_restarts_{0};

  Clock::time_point started_at_{};
};

}  // namespace jem::serve
