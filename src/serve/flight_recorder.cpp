#include "serve/flight_recorder.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace jem::serve {
namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

bool matches(const FlightRecord& record, const FlightFilter& f) {
  if (f.status != 0 && record.status != f.status) return false;
  if (record.total_ns < f.min_total_ns) return false;
  return true;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)), shards_(kShards) {
  // Spread capacity across shards; every shard holds at least one slot so a
  // tiny recorder still accepts records from every stripe.
  const std::size_t per_shard = (capacity_ + kShards - 1) / kShards;
  for (Shard& shard : shards_) shard.ring.resize(std::max<std::size_t>(per_shard, 1));
}

void FlightRecorder::push(FlightRecord record) {
  record.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  Shard& shard = shards_[obs::this_thread_stripe() % kShards];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.ring[shard.next] = std::move(record);
  shard.next = (shard.next + 1) % shard.ring.size();
  shard.used = std::min(shard.used + 1, shard.ring.size());
}

std::vector<FlightRecord> FlightRecorder::dump(const FlightFilter& filter) const {
  std::vector<FlightRecord> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (std::size_t i = 0; i < shard.used; ++i) {
      const FlightRecord& record = shard.ring[i];
      if (matches(record, filter)) out.push_back(record);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.seq > b.seq;
            });
  if (out.size() > filter.limit) out.resize(filter.limit);
  return out;
}

std::string FlightRecorder::to_json(const FlightFilter& filter) const {
  const std::vector<FlightRecord> records = dump(filter);
  std::string out;
  out.reserve(256 + records.size() * 256);
  out += "{\"capacity\":";
  append_u64(out, capacity_);
  out += ",\"recorded\":";
  append_u64(out, recorded());
  out += ",\"requests\":[";
  bool first = true;
  for (const FlightRecord& r : records) {
    if (!first) out += ',';
    first = false;
    out += "{\"seq\":";
    append_u64(out, r.seq);
    out += ",\"trace_id\":\"";
    out += obs::json::escape(r.trace_id);
    out += "\",\"request_id\":\"";
    out += obs::json::escape(r.request_id);
    out += "\",\"endpoint\":\"";
    out += obs::json::escape(r.endpoint);
    out += "\",\"status\":";
    append_u64(out, static_cast<std::uint64_t>(r.status));
    out += ",\"cache_hit\":";
    out += r.cache_hit ? "true" : "false";
    out += ",\"batch\":";
    append_u64(out, r.batch);
    out += ",\"queue_wait_ns\":";
    append_u64(out, r.queue_wait_ns);
    out += ",\"map_ns\":";
    append_u64(out, r.map_ns);
    out += ",\"serialize_ns\":";
    append_u64(out, r.serialize_ns);
    out += ",\"total_ns\":";
    append_u64(out, r.total_ns);
    out += ",\"annotation\":\"";
    out += obs::json::escape(r.annotation);
    out += "\"}";
  }
  out += "]}";
  return out;
}

std::string FlightRecorder::to_text(std::size_t limit) const {
  FlightFilter filter;
  filter.limit = limit;
  const std::vector<FlightRecord> records = dump(filter);
  std::string out = "flight recorder: ";
  append_u64(out, recorded());
  out += " recorded, showing ";
  append_u64(out, records.size());
  out += " (newest first)\n";
  for (const FlightRecord& r : records) {
    char line[256];
    std::snprintf(line, sizeof line,
                  "  #%-6" PRIu64 " %s-%s %-16s %3d %s batch=%" PRIu64
                  " wait=%" PRIu64 "us map=%" PRIu64 "us ser=%" PRIu64
                  "us total=%" PRIu64 "us%s%s\n",
                  r.seq, r.trace_id.c_str(), r.request_id.c_str(),
                  r.endpoint.c_str(), r.status, r.cache_hit ? "hit " : "miss",
                  r.batch, r.queue_wait_ns / 1000, r.map_ns / 1000,
                  r.serialize_ns / 1000, r.total_ns / 1000,
                  r.annotation.empty() ? "" : " ",
                  r.annotation.c_str());
    out += line;
  }
  return out;
}

std::uint64_t FlightRecorder::recorded() const noexcept {
  return seq_.load(std::memory_order_relaxed);
}

}  // namespace jem::serve
