// Minimal, dependency-free HTTP/1.1 message layer for the mapping service:
// just enough of RFC 9112 for a local loopback front end — request line,
// headers, Content-Length bodies, query strings — parsed incrementally from
// a byte buffer so the socket loop can feed partial reads. No chunked
// encoding, no keep-alive (every response carries `Connection: close`),
// no TLS: `jem serve` binds loopback and fronts one process.
//
// The parser is deliberately separate from the socket code (server.cpp)
// so it is unit-testable on plain strings, including truncation and
// malformed-input cases, without opening a socket.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace jem::serve {

/// One parsed request. Header names are lower-cased at parse time; query
/// parameters are percent-decoding-free (the service API uses only
/// [A-Za-z0-9_] names and integer values).
struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string target;   // raw request target ("/map?top_x=3")
  std::string path;     // target up to '?' ("/map")
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::vector<std::pair<std::string, std::string>> query;
  std::string body;

  /// First header with this (case-insensitive) name, or nullptr.
  [[nodiscard]] const std::string* header(std::string_view name) const;

  /// First query parameter with this name, or nullptr.
  [[nodiscard]] const std::string* query_param(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> headers;  // extras
  std::string body;

  /// First header with this (case-insensitive) name, or nullptr — the
  /// client-side mirror of HttpRequest::header (e.g. `x-jem-request-id`).
  [[nodiscard]] const std::string* header(std::string_view name) const;
};

enum class ParseStatus {
  kComplete,    // one full message parsed
  kIncomplete,  // need more bytes
  kBad,         // malformed — reject the connection
};

struct RequestParse {
  ParseStatus status = ParseStatus::kIncomplete;
  HttpRequest request;     // valid when kComplete
  std::size_t consumed = 0;  // bytes of `buffer` the message occupied
  std::string error;       // diagnostic when kBad
  /// Status the server should answer with before closing when kBad:
  /// 431 for an oversized header block, 413 for a body beyond `max_body`,
  /// 400 for everything else malformed.
  int reject_status = 400;
};

/// Parses one request from the front of `buffer`. Returns kIncomplete while
/// the head or declared body is still truncated, kBad on a malformed head,
/// a missing/overflowing Content-Length, or a body larger than `max_body`.
[[nodiscard]] RequestParse parse_request(std::string_view buffer,
                                         std::size_t max_body = 1 << 20);

/// Canonical reason phrase for the handful of statuses the server emits.
[[nodiscard]] std::string_view status_reason(int status) noexcept;

/// Serializes a response with Content-Length and `Connection: close`.
[[nodiscard]] std::string serialize_response(const HttpResponse& response);

/// Serializes a request (client side: tests, jem probe, bench_serve).
/// Adds Host and Content-Length headers.
[[nodiscard]] std::string serialize_request(const HttpRequest& request,
                                            std::string_view host);

struct ResponseParse {
  ParseStatus status = ParseStatus::kIncomplete;
  HttpResponse response;  // valid when kComplete
  std::string error;
};

/// Parses a response (client side). Body completeness is judged by
/// Content-Length when present; without one the caller must feed the full
/// connection-closed buffer and `eof` must be true.
[[nodiscard]] ResponseParse parse_response(std::string_view buffer, bool eof);

}  // namespace jem::serve
