#include "eval/metrics.hpp"

namespace jem::eval {

QualityCounts evaluate(std::span<const core::SegmentMapping> mappings,
                       const TruthSet& truth) {
  QualityCounts counts;
  for (const core::SegmentMapping& mapping : mappings) {
    ++counts.segments;
    const bool bench_has = truth.has_any(mapping.read, mapping.end);
    if (mapping.result.mapped()) {
      ++counts.mapped;
      if (truth.is_true(mapping.read, mapping.end, mapping.result.subject)) {
        ++counts.tp;
      } else {
        ++counts.fp;
        if (bench_has) ++counts.fn;  // the true hit was missed
      }
    } else {
      if (bench_has) {
        ++counts.fn;
      } else {
        ++counts.tn;
      }
    }
  }
  return counts;
}

TopXRecall evaluate_topx(std::span<const core::SegmentTopX> mappings,
                         const TruthSet& truth) {
  TopXRecall result;
  for (const core::SegmentTopX& mapping : mappings) {
    if (!truth.has_any(mapping.read, mapping.end)) continue;
    ++result.with_truth;
    for (const core::MapResult& hit : mapping.hits) {
      if (hit.mapped() &&
          truth.is_true(mapping.read, mapping.end, hit.subject)) {
        ++result.recalled;
        break;
      }
    }
  }
  return result;
}

}  // namespace jem::eval
