// Precision/recall evaluation of a mapping against the TruthSet, using the
// paper's accounting (§IV-B):
//   TP — output pair is in Bench;
//   FP — output pair is not in Bench;
//   FN — a bench-having read end whose output is wrong or missing (a false
//        positive on such an end is "by implication also a false negative");
//   TN — no output and no bench pair.
// precision = TP/(TP+FP), recall = TP/(TP+FN); as in the paper, recall is
// bounded above by precision whenever every end has some true mapping.
#pragma once

#include <cstdint>
#include <span>

#include "core/mapper.hpp"
#include "eval/truth.hpp"

namespace jem::eval {

struct QualityCounts {
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::uint64_t fn = 0;
  std::uint64_t tn = 0;
  std::uint64_t segments = 0;  // total evaluated end segments
  std::uint64_t mapped = 0;    // segments with an output mapping

  [[nodiscard]] double precision() const noexcept {
    const std::uint64_t denom = tp + fp;
    return denom == 0 ? 0.0
                      : static_cast<double>(tp) / static_cast<double>(denom);
  }
  [[nodiscard]] double recall() const noexcept {
    const std::uint64_t denom = tp + fn;
    return denom == 0 ? 0.0
                      : static_cast<double>(tp) / static_cast<double>(denom);
  }
  [[nodiscard]] double f1() const noexcept {
    const double p = precision();
    const double r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Scores `mappings` (one entry per evaluated end segment) against `truth`.
[[nodiscard]] QualityCounts evaluate(
    std::span<const core::SegmentMapping> mappings, const TruthSet& truth);

/// Recall of top-x mapping (the paper's §IV-C extension): an end segment
/// counts as recalled if *any* of its reported candidates is in Bench.
/// Denominator = segments with at least one true mapping.
struct TopXRecall {
  std::uint64_t recalled = 0;
  std::uint64_t with_truth = 0;

  [[nodiscard]] double recall() const noexcept {
    return with_truth == 0 ? 0.0
                           : static_cast<double>(recalled) /
                                 static_cast<double>(with_truth);
  }
};

[[nodiscard]] TopXRecall evaluate_topx(
    std::span<const core::SegmentTopX> mappings, const TruthSet& truth);

}  // namespace jem::eval
