#include "eval/report.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace jem::eval {

TextTable::TextTable(std::vector<std::string> header) {
  if (header.empty()) {
    throw std::invalid_argument("TextTable: header must not be empty");
  }
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != rows_.front().size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  const std::size_t cols = rows_.front().size();
  std::vector<std::size_t> widths(cols, 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < cols; ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      out << row[c];
      if (c + 1 < cols) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };

  emit_row(rows_.front());
  std::size_t total = 0;
  for (std::size_t c = 0; c < cols; ++c) total += widths[c] + (c + 1 < cols ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (std::size_t r = 1; r < rows_.size(); ++r) emit_row(rows_[r]);
  return out.str();
}

std::vector<HistogramBin> make_histogram(const std::vector<double>& values,
                                         double lo, double hi, int bins) {
  if (bins < 1 || hi <= lo) {
    throw std::invalid_argument("make_histogram: bad bin specification");
  }
  std::vector<HistogramBin> histogram(static_cast<std::size_t>(bins));
  const double width = (hi - lo) / bins;
  for (int b = 0; b < bins; ++b) {
    histogram[static_cast<std::size_t>(b)].lo = lo + b * width;
    histogram[static_cast<std::size_t>(b)].hi = lo + (b + 1) * width;
  }
  for (double v : values) {
    if (v < lo || v > hi) continue;
    auto b = static_cast<std::size_t>((v - lo) / width);
    if (b >= histogram.size()) b = histogram.size() - 1;  // v == hi edge
    ++histogram[b].count;
  }
  return histogram;
}

std::string render_histogram(const std::vector<HistogramBin>& bins,
                             int max_bar_width) {
  std::uint64_t max_count = 1;
  for (const HistogramBin& bin : bins) {
    max_count = std::max(max_count, bin.count);
  }
  std::ostringstream out;
  for (const HistogramBin& bin : bins) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(bin.count) / static_cast<double>(max_count) *
        max_bar_width);
    out << '[' << util::fixed(bin.lo, 2) << ", " << util::fixed(bin.hi, 2)
        << ")  " << std::string(bar, '#') << ' ' << bin.count << '\n';
  }
  return out.str();
}

}  // namespace jem::eval
