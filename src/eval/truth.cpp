#include "eval/truth.hpp"

#include <algorithm>

namespace jem::eval {

sim::Interval end_segment_interval(const sim::ReadTruth& read,
                                   core::ReadEnd end,
                                   std::uint32_t segment_length) {
  const sim::Interval& span = read.interval;
  const std::uint64_t len =
      std::min<std::uint64_t>(segment_length, span.length());

  // On the forward strand the read's prefix is the left end of the span; on
  // the reverse strand the read sequence is the reverse complement, so its
  // prefix corresponds to the right end (and the suffix to the left end).
  const bool left_end = (end == core::ReadEnd::kPrefix) != read.reverse;
  if (left_end) return {span.begin, span.begin + len};
  return {span.end - len, span.end};
}

sim::Interval segment_interval_at(const sim::ReadTruth& read,
                                  std::uint32_t offset,
                                  std::uint32_t length) {
  const sim::Interval& span = read.interval;
  const std::uint64_t read_length = span.length();
  const std::uint64_t begin_in_read =
      std::min<std::uint64_t>(offset, read_length);
  const std::uint64_t end_in_read =
      std::min<std::uint64_t>(begin_in_read + length, read_length);

  if (!read.reverse) {
    return {span.begin + begin_in_read, span.begin + end_in_read};
  }
  // Reverse strand: read position i corresponds to genome position
  // span.end - 1 - i, so read range [b, e) maps to genome [end - e, end - b).
  return {span.end - end_in_read, span.end - begin_in_read};
}

TruthSet::TruthSet(std::span<const sim::Interval> contig_truth,
                   std::span<const sim::ReadTruth> read_truth,
                   std::uint32_t segment_length, std::uint32_t min_overlap)
    : contig_truth_(contig_truth.begin(), contig_truth.end()),
      read_truth_(read_truth.begin(), read_truth.end()),
      segment_length_(segment_length),
      min_overlap_(min_overlap) {}

namespace {

/// Contigs (by index) overlapping `segment` by at least `min_overlap`,
/// assuming `contigs` is position-sorted and non-overlapping.
std::vector<io::SeqId> overlapping_contigs(
    const std::vector<sim::Interval>& contigs, const sim::Interval& segment,
    std::uint32_t min_overlap) {
  std::vector<io::SeqId> subjects;
  const auto first = std::partition_point(
      contigs.begin(), contigs.end(),
      [&](const sim::Interval& c) { return c.end <= segment.begin; });
  for (auto it = first; it != contigs.end() && it->begin < segment.end;
       ++it) {
    if (sim::overlap(*it, segment) >= min_overlap) {
      subjects.push_back(
          static_cast<io::SeqId>(std::distance(contigs.begin(), it)));
    }
  }
  return subjects;
}

}  // namespace

std::vector<io::SeqId> TruthSet::true_subjects(io::SeqId read,
                                               core::ReadEnd end) const {
  return overlapping_contigs(
      contig_truth_,
      end_segment_interval(read_truth_[read], end, segment_length_),
      min_overlap_);
}

std::vector<io::SeqId> TruthSet::true_subjects_at(io::SeqId read,
                                                  std::uint32_t offset,
                                                  std::uint32_t length) const {
  return overlapping_contigs(
      contig_truth_, segment_interval_at(read_truth_[read], offset, length),
      min_overlap_);
}

std::vector<io::SeqId> TruthSet::true_subjects_whole_read(
    io::SeqId read) const {
  return overlapping_contigs(contig_truth_, read_truth_[read].interval,
                             min_overlap_);
}

bool TruthSet::is_true(io::SeqId read, core::ReadEnd end,
                       io::SeqId subject) const {
  if (subject >= contig_truth_.size()) return false;
  const sim::Interval segment =
      end_segment_interval(read_truth_[read], end, segment_length_);
  return sim::overlap(contig_truth_[subject], segment) >= min_overlap_;
}

bool TruthSet::has_any(io::SeqId read, core::ReadEnd end) const {
  return !true_subjects(read, end).empty();
}

std::uint64_t TruthSet::total_pairs() const noexcept {
  std::uint64_t total = 0;
  for (io::SeqId read = 0; read < read_truth_.size(); ++read) {
    total += true_subjects(read, core::ReadEnd::kPrefix).size();
    total += true_subjects(read, core::ReadEnd::kSuffix).size();
  }
  return total;
}

}  // namespace jem::eval
