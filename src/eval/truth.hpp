// Benchmark (ground-truth) construction, following the paper's evaluation
// methodology (§IV-B, Fig 4): an end segment e of a long read truly maps to
// contig c iff their genome coordinate intervals intersect in at least k
// positions. The paper recovered coordinates by re-mapping contigs and reads
// with Minimap2; our simulators record them directly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/end_segments.hpp"
#include "core/mapper.hpp"
#include "sim/contigs.hpp"
#include "sim/hifi_reads.hpp"

namespace jem::eval {

/// Genome interval covered by one end segment of a read. For a
/// reverse-strand read the *prefix* of the read sequence corresponds to the
/// *end* of the genome interval (the read is the reverse complement of its
/// source span).
[[nodiscard]] sim::Interval end_segment_interval(const sim::ReadTruth& read,
                                                 core::ReadEnd end,
                                                 std::uint32_t segment_length);

/// Genome interval covered by the read positions [offset, offset + length)
/// — the general form used by tiled (containment-mode) segments. Clamps to
/// the read span; strand-aware like end_segment_interval.
[[nodiscard]] sim::Interval segment_interval_at(const sim::ReadTruth& read,
                                                std::uint32_t offset,
                                                std::uint32_t length);

/// The set Bench of true <read end, contig> pairs.
class TruthSet {
 public:
  /// `contig_truth` must be position-sorted (the simulator emits it so);
  /// `min_overlap` is the k of the Fig 4 rule.
  TruthSet(std::span<const sim::Interval> contig_truth,
           std::span<const sim::ReadTruth> read_truth,
           std::uint32_t segment_length, std::uint32_t min_overlap);

  /// True contigs for one read end (sorted by id).
  [[nodiscard]] std::vector<io::SeqId> true_subjects(
      io::SeqId read, core::ReadEnd end) const;

  /// True contigs for an arbitrary read segment [offset, offset + length)
  /// (containment-mode evaluation).
  [[nodiscard]] std::vector<io::SeqId> true_subjects_at(
      io::SeqId read, std::uint32_t offset, std::uint32_t length) const;

  /// True contigs for a whole read (any overlap >= min_overlap) — the
  /// benchmark set for read-to-contig pair recovery.
  [[nodiscard]] std::vector<io::SeqId> true_subjects_whole_read(
      io::SeqId read) const;

  /// Is <read end, subject> in Bench?
  [[nodiscard]] bool is_true(io::SeqId read, core::ReadEnd end,
                             io::SeqId subject) const;

  /// Does this read end have any true mapping at all?
  [[nodiscard]] bool has_any(io::SeqId read, core::ReadEnd end) const;

  /// Total number of <read end, contig> pairs in Bench.
  [[nodiscard]] std::uint64_t total_pairs() const noexcept;

  [[nodiscard]] std::size_t num_reads() const noexcept {
    return read_truth_.size();
  }

 private:
  std::vector<sim::Interval> contig_truth_;
  std::vector<sim::ReadTruth> read_truth_;
  std::uint32_t segment_length_;
  std::uint32_t min_overlap_;
};

}  // namespace jem::eval
