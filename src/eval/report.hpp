// Fixed-width text tables and histogram rendering for the table/figure
// drivers: every bench binary prints the same rows/series the paper reports
// using these helpers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace jem::eval {

/// A simple right-padded text table. Column widths auto-fit the content.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with a header underline; columns separated by two spaces.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::vector<std::string>> rows_;  // rows_[0] is the header
};

/// Renders a unicode-free ASCII bar histogram: one line per bin with a
/// proportional bar of '#' characters, used for Fig 9's identity
/// distribution.
struct HistogramBin {
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t count = 0;
};

[[nodiscard]] std::vector<HistogramBin> make_histogram(
    const std::vector<double>& values, double lo, double hi, int bins);

[[nodiscard]] std::string render_histogram(
    const std::vector<HistogramBin>& bins, int max_bar_width = 50);

}  // namespace jem::eval
