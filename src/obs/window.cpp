#include "obs/window.hpp"

#include <algorithm>

namespace jem::obs {

void WindowSnapshot::merge(const WindowSnapshot& other) noexcept {
  count += other.count;
  sum += other.sum;
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
}

double WindowSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, ceil).
  const double exact = q * static_cast<double>(count);
  std::uint64_t target = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(target) < exact || target == 0) ++target;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    cumulative += buckets[i];
    if (cumulative < target) continue;
    // Interpolate linearly within bucket i: values span
    // [lower, upper] = [2^(i-1), 2^i - 1] (bucket 0 holds exactly 0).
    if (i == 0) return 0.0;
    const double lower = static_cast<double>(std::uint64_t{1} << (i - 1));
    const double upper =
        static_cast<double>(Histogram::bucket_upper(i)) + 1.0;
    const std::uint64_t before = cumulative - buckets[i];
    const double frac = (static_cast<double>(target - before) - 0.5) /
                        static_cast<double>(buckets[i]);
    return lower + frac * (upper - lower);
  }
  return 0.0;  // Unreachable: cumulative == count >= target.
}

WindowedHistogram::WindowedHistogram(std::chrono::nanoseconds frame_width,
                                     std::size_t frames)
    : frame_width_(frame_width.count() > 0 ? frame_width
                                           : std::chrono::seconds(1)),
      epoch_(std::chrono::steady_clock::now()),
      ring_(std::max<std::size_t>(frames, 2)) {}

std::uint64_t WindowedHistogram::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void WindowedHistogram::record(std::uint64_t value) {
  record(value, now_ns());
}

void WindowedHistogram::record(std::uint64_t value, std::uint64_t now_ns) {
  maybe_advance(now_ns);
  Stripe& stripe = active_[this_thread_stripe()];
  stripe.buckets[Histogram::bucket_of(value)].fetch_add(
      1, std::memory_order_relaxed);
  stripe.sum.fetch_add(value, std::memory_order_relaxed);
  stripe.count.fetch_add(1, std::memory_order_relaxed);
}

void WindowedHistogram::maybe_advance(std::uint64_t now_ns) {
  const std::uint64_t idx =
      now_ns / static_cast<std::uint64_t>(frame_width_.count());
  if (idx == active_index_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  advance_locked(idx);
}

void WindowedHistogram::advance_locked(std::uint64_t frame_index) {
  std::uint64_t current = active_index_.load(std::memory_order_relaxed);
  if (frame_index <= current) return;  // Raced with another rotator.
  // Freeze the active accumulator into the slot for the frame it covered.
  // exchange(0) guarantees no recorded value is lost: a concurrent record
  // lands either before the drain (attributed to the old frame) or after
  // (attributed to the new one) — at most one frame of skew.
  Frame& frozen = ring_[current % ring_.size()];
  frozen = Frame{};
  frozen.index = current;
  for (Stripe& stripe : active_) {
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n =
          stripe.buckets[b].exchange(0, std::memory_order_relaxed);
      frozen.buckets[b] += n;
      frozen.count += n;
    }
    frozen.sum += stripe.sum.exchange(0, std::memory_order_relaxed);
    stripe.count.exchange(0, std::memory_order_relaxed);
  }
  // Keep lifetime totals before the ring slot gets overwritten a lap later.
  lifetime_.count += frozen.count;
  lifetime_.sum += frozen.sum;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    lifetime_.buckets[b] += frozen.buckets[b];
  }
  // Frames the clock skipped entirely (idle seconds) are empty.
  const std::uint64_t first_gap = current + 1;
  const std::uint64_t last_gap = frame_index - 1;
  for (std::uint64_t i = first_gap;
       i <= last_gap && i < first_gap + ring_.size(); ++i) {
    Frame& gap = ring_[i % ring_.size()];
    gap = Frame{};
    gap.index = i;
  }
  active_index_.store(frame_index, std::memory_order_release);
}

WindowSnapshot WindowedHistogram::snapshot(std::chrono::nanoseconds window) {
  return snapshot(window, now_ns());
}

WindowSnapshot WindowedHistogram::snapshot(std::chrono::nanoseconds window,
                                           std::uint64_t now_ns) {
  const auto width = static_cast<std::uint64_t>(frame_width_.count());
  const std::uint64_t idx = now_ns / width;
  std::uint64_t frames_wanted =
      (static_cast<std::uint64_t>(std::max<std::int64_t>(window.count(), 0)) +
       width - 1) /
      width;
  frames_wanted = std::clamp<std::uint64_t>(frames_wanted, 1, ring_.size());

  WindowSnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  advance_locked(idx);
  // The still-open active frame (index == idx) counts as the newest frame.
  for (const Stripe& stripe : active_) {
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = stripe.buckets[b].load(std::memory_order_relaxed);
      out.buckets[b] += n;
      out.count += n;
    }
    out.sum += stripe.sum.load(std::memory_order_relaxed);
  }
  // Plus the most recent frames_wanted - 1 frozen frames.
  for (std::uint64_t back = 1; back < frames_wanted && back <= idx; ++back) {
    const std::uint64_t want = idx - back;
    const Frame& frame = ring_[want % ring_.size()];
    if (frame.index != want) continue;  // Stale (older lap) or never written.
    out.count += frame.count;
    out.sum += frame.sum;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      out.buckets[b] += frame.buckets[b];
    }
  }
  return out;
}

WindowSnapshot WindowedHistogram::cumulative() const noexcept {
  WindowSnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.count = lifetime_.count;
  out.sum = lifetime_.sum;
  out.buckets = lifetime_.buckets;
  for (const Stripe& stripe : active_) {
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = stripe.buckets[b].load(std::memory_order_relaxed);
      out.buckets[b] += n;
      out.count += n;
    }
    out.sum += stripe.sum.load(std::memory_order_relaxed);
  }
  return out;
}

WindowedCounter::WindowedCounter(std::chrono::nanoseconds frame_width,
                                 std::size_t frames)
    : frame_width_(frame_width.count() > 0 ? frame_width
                                           : std::chrono::seconds(1)),
      epoch_(std::chrono::steady_clock::now()),
      ring_(std::max<std::size_t>(frames, 2)) {}

std::uint64_t WindowedCounter::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void WindowedCounter::add(std::uint64_t n) { add(n, now_ns()); }

void WindowedCounter::add(std::uint64_t n, std::uint64_t now_ns) {
  maybe_advance(now_ns);
  active_[this_thread_stripe()].value.fetch_add(n, std::memory_order_relaxed);
}

void WindowedCounter::maybe_advance(std::uint64_t now_ns) {
  const std::uint64_t idx =
      now_ns / static_cast<std::uint64_t>(frame_width_.count());
  if (idx == active_index_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  advance_locked(idx);
}

void WindowedCounter::advance_locked(std::uint64_t frame_index) {
  std::uint64_t current = active_index_.load(std::memory_order_relaxed);
  if (frame_index <= current) return;
  Frame& frozen = ring_[current % ring_.size()];
  frozen = Frame{};
  frozen.index = current;
  for (detail::StripedCell& cell : active_) {
    frozen.count += cell.value.exchange(0, std::memory_order_relaxed);
  }
  lifetime_count_ += frozen.count;
  const std::uint64_t first_gap = current + 1;
  const std::uint64_t last_gap = frame_index - 1;
  for (std::uint64_t i = first_gap;
       i <= last_gap && i < first_gap + ring_.size(); ++i) {
    Frame& gap = ring_[i % ring_.size()];
    gap = Frame{};
    gap.index = i;
  }
  active_index_.store(frame_index, std::memory_order_release);
}

std::uint64_t WindowedCounter::total(std::chrono::nanoseconds window) {
  return total(window, now_ns());
}

std::uint64_t WindowedCounter::total(std::chrono::nanoseconds window,
                                     std::uint64_t now_ns) {
  const auto width = static_cast<std::uint64_t>(frame_width_.count());
  const std::uint64_t idx = now_ns / width;
  std::uint64_t frames_wanted =
      (static_cast<std::uint64_t>(std::max<std::int64_t>(window.count(), 0)) +
       width - 1) /
      width;
  frames_wanted = std::clamp<std::uint64_t>(frames_wanted, 1, ring_.size());

  std::uint64_t out = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  advance_locked(idx);
  for (const detail::StripedCell& cell : active_) {
    out += cell.value.load(std::memory_order_relaxed);
  }
  for (std::uint64_t back = 1; back < frames_wanted && back <= idx; ++back) {
    const std::uint64_t want = idx - back;
    const Frame& frame = ring_[want % ring_.size()];
    if (frame.index != want) continue;
    out += frame.count;
  }
  return out;
}

std::uint64_t WindowedCounter::cumulative() const noexcept {
  std::uint64_t out = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  out += lifetime_count_;
  for (const detail::StripedCell& cell : active_) {
    out += cell.value.load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace jem::obs
