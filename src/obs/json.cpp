#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace jem::obs::json {

const Value* Value::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const char* message) const {
    throw ParseError(message, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        Value value;
        value.kind = Value::Kind::kString;
        value.str = parse_string();
        return value;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        Value value;
        value.kind = Value::Kind::kBool;
        value.boolean = true;
        return value;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        Value value;
        value.kind = Value::Kind::kBool;
        return value;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return {};
      }
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value value;
    value.kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      value.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  Value parse_array() {
    expect('[');
    Value value;
    value.kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // The exporters only emit \u00XX for control bytes; decode the
          // BMP code point as UTF-8 (surrogate pairs are not needed and a
          // lone surrogate is rejected).
          if (code >= 0xD800 && code <= 0xDFFF) fail("lone surrogate");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("bad number");
    }
    Value value;
    value.kind = Value::Kind::kNumber;
    const char* begin = text_.data() + start;
    const char* end = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(begin, end, value.number);
    if (ec != std::errc{} || ptr != end) {
      pos_ = start;
      fail("bad number");
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace jem::obs::json
