// W3C trace-context helpers (docs/observability.md "Trace propagation").
//
// A request crossing the serve stack carries a `traceparent` header in the
// W3C Trace Context format:
//
//     00-<32 lowercase hex trace-id>-<16 lowercase hex parent-id>-<2 hex flags>
//
// `serve::Client` generates one per request (or forwards a caller-supplied
// header); the server parses it, mints a fresh request id (its own span id),
// and stamps both onto every log line, flight-recorder record, tracer span
// and the `x-jem-request-id` response header. These helpers are plain string
// munging — no globals, no clocks on the parse path — so they are usable from
// any layer without pulling in the tracer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace jem::obs {

/// A parsed (or freshly minted) trace context: `trace_id` names the whole
/// request tree end-to-end, `span_id` names one hop's span within it.
struct TraceContext {
  std::string trace_id;  ///< 32 lowercase hex chars, not all-zero.
  std::string span_id;   ///< 16 lowercase hex chars, not all-zero.
};

/// Formats `n` as `digits` lowercase hex characters (zero padded).
[[nodiscard]] std::string to_hex(std::uint64_t n, int digits);

/// Mints a fresh context: a new random trace id and span id. Ids come from a
/// process-global SplitMix64 stream seeded once from the monotonic clock and
/// address-space entropy; the draw is a single relaxed fetch_add, safe from
/// any thread.
[[nodiscard]] TraceContext generate_trace_context();

/// A fresh span id within an existing trace (one more hop of the same
/// request).
[[nodiscard]] TraceContext child_of(const TraceContext& parent);

/// Parses a W3C `traceparent` header value. Returns nullopt on anything
/// malformed: wrong length, bad separators, non-hex digits, unsupported
/// version `ff`, or all-zero trace/span ids (which the spec declares
/// invalid).
[[nodiscard]] std::optional<TraceContext> parse_traceparent(
    std::string_view header);

/// Renders `ctx` as a version-00 `traceparent` value with the sampled flag
/// set: `00-<trace_id>-<span_id>-01`.
[[nodiscard]] std::string to_traceparent(const TraceContext& ctx);

}  // namespace jem::obs
