#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

#include "obs/json.hpp"

namespace jem::obs {

namespace {

std::uint64_t steady_now_ns() noexcept {
  static_assert(std::chrono::steady_clock::is_steady);
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t next_tracer_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Microseconds with nanosecond precision ("12.345") — the trace_event
/// `ts` field is in microseconds.
std::string format_us(std::uint64_t ns) {
  std::string out = std::to_string(ns / 1000);
  const auto frac = static_cast<unsigned>(ns % 1000);
  out += '.';
  out += static_cast<char>('0' + frac / 100);
  out += static_cast<char>('0' + (frac / 10) % 10);
  out += static_cast<char>('0' + frac % 10);
  return out;
}

}  // namespace

struct detail::TracerThreadBuffer {
  TracerThreadBuffer(std::uint32_t tid_in, std::size_t capacity)
      : tid(tid_in) {
    events.resize(capacity);
  }

  const std::uint32_t tid;
  std::string label;          // written under the tracer mutex
  std::uint32_t depth = 0;    // owner thread only
  std::vector<TraceEvent> events;  // slots [0, count) are published
  std::atomic<std::size_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
};

namespace {

/// Cache of the calling thread's buffer, keyed by tracer id. Ids are never
/// reused, so a stale entry from a destroyed tracer simply misses.
struct BufferCache {
  std::uint64_t tracer_id = 0;
  detail::TracerThreadBuffer* buffer = nullptr;
};
thread_local BufferCache t_buffer_cache;

}  // namespace

Tracer::Tracer(std::size_t capacity_per_thread, std::string process_name)
    : id_(next_tracer_id()),
      capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread),
      process_name_(std::move(process_name)),
      epoch_ns_(steady_now_ns()) {}

Tracer::~Tracer() = default;

std::uint64_t Tracer::now_ns() const noexcept {
  return steady_now_ns() - epoch_ns_;
}

Tracer::ThreadBuffer& Tracer::buffer_for_this_thread() {
  BufferCache& cache = t_buffer_cache;
  if (cache.tracer_id == id_) return *cache.buffer;
  std::lock_guard lock(mutex_);
  auto buffer = std::make_unique<ThreadBuffer>(
      static_cast<std::uint32_t>(threads_.size()), capacity_);
  ThreadBuffer& ref = *buffer;
  threads_.push_back(std::move(buffer));
  cache.tracer_id = id_;
  cache.buffer = &ref;
  return ref;
}

void Tracer::append(ThreadBuffer& buffer, TraceEvent event) noexcept {
  const std::size_t n = buffer.count.load(std::memory_order_relaxed);
  if (n >= capacity_) {
    buffer.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  event.seq = n;
  buffer.events[n] = std::move(event);
  // Publish the slot: snapshot() acquire-loads count and reads only below.
  buffer.count.store(n + 1, std::memory_order_release);
}

Span::Span(Tracer* tracer, std::string name) noexcept
    : tracer_(tracer), name_(std::move(name)) {
  start_ns_ = tracer_->now_ns();
  ++tracer_->buffer_for_this_thread().depth;
}

void Span::finish() noexcept {
  if (tracer_ == nullptr) return;
  tracer_->end_span(name_, start_ns_);
  tracer_ = nullptr;
  name_.clear();
}

void Tracer::end_span(std::string& name, std::uint64_t start_ns) noexcept {
  ThreadBuffer& buffer = buffer_for_this_thread();
  if (buffer.depth > 0) --buffer.depth;
  TraceEvent event;
  event.name = std::move(name);
  event.kind = TraceEvent::Kind::kSpan;
  event.tid = buffer.tid;
  event.depth = buffer.depth;
  event.start_ns = start_ns;
  const std::uint64_t end_ns = now_ns();
  event.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  append(buffer, std::move(event));
}

void Tracer::set_thread_label(std::string_view label) {
  ThreadBuffer& buffer = buffer_for_this_thread();
  std::lock_guard lock(mutex_);
  buffer.label = std::string(label);
}

void Tracer::set_track_label(std::uint32_t tid, std::string_view label) {
  std::lock_guard lock(mutex_);
  for (auto& [existing, text] : track_labels_) {
    if (existing == tid) {
      text = std::string(label);
      return;
    }
  }
  track_labels_.emplace_back(tid, std::string(label));
}

void Tracer::record(std::string_view name, std::uint32_t tid,
                    std::uint64_t start_ns, std::uint64_t dur_ns,
                    std::uint32_t depth) {
  ThreadBuffer& buffer = buffer_for_this_thread();
  TraceEvent event;
  event.name = std::string(name);
  event.kind = TraceEvent::Kind::kSpan;
  event.tid = tid;
  event.depth = depth;
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  append(buffer, std::move(event));
}

void Tracer::counter_sample(std::string_view name, double value) {
  ThreadBuffer& buffer = buffer_for_this_thread();
  TraceEvent event;
  event.name = std::string(name);
  event.kind = TraceEvent::Kind::kCounter;
  event.tid = buffer.tid;
  event.start_ns = now_ns();
  event.value = value;
  append(buffer, std::move(event));
}

TraceSnapshot Tracer::snapshot() const {
  TraceSnapshot snap;
  snap.process_name = process_name_;
  std::lock_guard lock(mutex_);
  snap.threads.reserve(threads_.size());
  for (const auto& buffer : threads_) {
    TraceSnapshot::Thread thread;
    thread.tid = buffer->tid;
    thread.label = buffer->label;
    thread.dropped = buffer->dropped.load(std::memory_order_relaxed);
    const std::size_t n = buffer->count.load(std::memory_order_acquire);
    thread.events.assign(buffer->events.begin(),
                         buffer->events.begin() +
                             static_cast<std::ptrdiff_t>(n));
    snap.threads.push_back(std::move(thread));
  }
  for (const auto& [tid, label] : track_labels_) {
    auto it = std::find_if(snap.threads.begin(), snap.threads.end(),
                           [tid = tid](const TraceSnapshot::Thread& t) {
                             return t.tid == tid;
                           });
    if (it == snap.threads.end()) {
      TraceSnapshot::Thread thread;
      thread.tid = tid;
      thread.label = label;
      snap.threads.push_back(std::move(thread));
    } else if (it->label.empty()) {
      it->label = label;
    }
  }
  std::sort(snap.threads.begin(), snap.threads.end(),
            [](const TraceSnapshot::Thread& a, const TraceSnapshot::Thread& b) {
              return a.tid < b.tid;
            });
  return snap;
}

std::uint64_t TraceSnapshot::total_events() const noexcept {
  std::uint64_t total = 0;
  for (const Thread& thread : threads) total += thread.events.size();
  return total;
}

std::uint64_t TraceSnapshot::total_dropped() const noexcept {
  std::uint64_t total = 0;
  for (const Thread& thread : threads) total += thread.dropped;
  return total;
}

std::string TraceSnapshot::to_chrome_json() const {
  // Events are grouped by track (event tid, which record() may override),
  // sorted (start asc, longer-first at equal start, seq as tiebreak), and
  // emitted with an explicit stack so every B has a matching E and spans
  // nest properly even if recorded durations overlap at the edges.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    if (!first) out += ',';
    first = false;
    out += event;
  };

  emit("{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":"
       "\"" +
       json::escape(process_name) + "\"}}");
  for (const Thread& thread : threads) {
    if (thread.label.empty()) continue;
    emit("{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(thread.tid) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         json::escape(thread.label) + "\"}}");
  }

  std::vector<const TraceEvent*> spans;
  std::vector<const TraceEvent*> counters;
  for (const Thread& thread : threads) {
    for (const TraceEvent& event : thread.events) {
      (event.kind == TraceEvent::Kind::kSpan ? spans : counters)
          .push_back(&event);
    }
  }

  std::sort(spans.begin(), spans.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              if (a->tid != b->tid) return a->tid < b->tid;
              if (a->start_ns != b->start_ns) return a->start_ns < b->start_ns;
              if (a->dur_ns != b->dur_ns) return a->dur_ns > b->dur_ns;
              return a->seq < b->seq;
            });

  struct Open {
    std::uint64_t end_ns;
  };
  std::vector<Open> stack;
  std::uint32_t current_tid = 0;
  const auto close_until = [&](std::uint64_t start_ns, std::size_t keep) {
    while (stack.size() > keep && stack.back().end_ns <= start_ns) {
      emit("{\"ph\":\"E\",\"pid\":0,\"tid\":" + std::to_string(current_tid) +
           ",\"ts\":" + format_us(stack.back().end_ns) + "}");
      stack.pop_back();
    }
  };
  const auto drain = [&] {
    while (!stack.empty()) {
      emit("{\"ph\":\"E\",\"pid\":0,\"tid\":" + std::to_string(current_tid) +
           ",\"ts\":" + format_us(stack.back().end_ns) + "}");
      stack.pop_back();
    }
  };

  for (const TraceEvent* event : spans) {
    if (event->tid != current_tid) {
      drain();
      current_tid = event->tid;
    }
    close_until(event->start_ns, 0);
    std::uint64_t end_ns = event->start_ns + event->dur_ns;
    if (!stack.empty() && end_ns > stack.back().end_ns) {
      end_ns = stack.back().end_ns;  // clamp into the enclosing span
    }
    emit("{\"ph\":\"B\",\"pid\":0,\"tid\":" + std::to_string(event->tid) +
         ",\"ts\":" + format_us(event->start_ns) + ",\"name\":\"" +
         json::escape(event->name) + "\"}");
    stack.push_back({end_ns});
  }
  drain();

  for (const TraceEvent* event : counters) {
    emit("{\"ph\":\"C\",\"pid\":0,\"tid\":" + std::to_string(event->tid) +
         ",\"ts\":" + format_us(event->start_ns) + ",\"name\":\"" +
         json::escape(event->name) + "\",\"args\":{\"value\":" +
         std::to_string(event->value) + "}}");
  }

  out += "]}";
  return out;
}

}  // namespace jem::obs
