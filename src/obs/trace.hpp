// Span-based tracer with Chrome trace_event export (docs/observability.md).
//
// A Tracer owns one pre-sized event buffer per participating thread. A
// thread's first span registers it (mutex, once); after that, recording is
// owner-only writes into the thread's slots plus one release-store of the
// event count — no locks, and snapshot() can run concurrently because it
// only reads slots below the acquire-loaded count. When a buffer fills,
// new events are dropped (drop-newest) and counted, so published events
// always form well-nested span sets and Chrome B/E pairs stay matched.
//
// Timestamps are monotonic nanoseconds since the Tracer's construction
// (small, deterministic epoch). Event ids are (tid, per-thread sequence),
// so a serial run's ids are reproducible. Spans may also be synthesized
// with explicit times/track via record() — StagedExecutor uses that to
// export its *modeled* per-rank timeline.
//
// The thread-local buffer cache is keyed by a process-unique tracer id
// that is never reused, so a cache entry from a destroyed Tracer can
// never be dereferenced by a later one.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace jem::obs {

class Tracer;

namespace detail {
struct TracerThreadBuffer;
}  // namespace detail

/// One recorded event. kSpan carries [start_ns, start_ns + dur_ns) on track
/// `tid`; kCounter is an instantaneous sample for a Chrome counter track.
struct TraceEvent {
  enum class Kind : std::uint8_t { kSpan, kCounter };

  std::string name;
  Kind kind = Kind::kSpan;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;  // nesting depth at record time (0 = top level)
  std::uint64_t seq = 0;    // per-thread sequence number
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  double value = 0.0;  // counter sample
};

/// RAII span: times [construction, destruction) on the current thread's
/// track. Obtained from Tracer::span(); a default-constructed or moved-from
/// Span records nothing. Safe to hold across the tracer's own lifetime
/// end is NOT supported — finish spans before destroying the Tracer.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { swap(other); }
  Span& operator=(Span&& other) noexcept {
    finish();
    swap(other);
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

  /// Ends the span now (idempotent).
  void finish() noexcept;

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::string name) noexcept;

  void swap(Span& other) noexcept {
    std::swap(tracer_, other.tracer_);
    std::swap(name_, other.name_);
    std::swap(start_ns_, other.start_ns_);
  }

  Tracer* tracer_ = nullptr;
  std::string name_;
  std::uint64_t start_ns_ = 0;
};

/// Copy of a tracer's published state.
struct TraceSnapshot {
  struct Thread {
    std::uint32_t tid = 0;
    std::string label;
    std::uint64_t dropped = 0;
    std::vector<TraceEvent> events;  // in record order
  };

  std::vector<Thread> threads;  // sorted by tid
  std::string process_name;

  [[nodiscard]] std::uint64_t total_events() const noexcept;
  [[nodiscard]] std::uint64_t total_dropped() const noexcept;

  /// Chrome trace_event JSON (`{"traceEvents":[...]}`), loadable in
  /// Perfetto / chrome://tracing. Spans become matched B/E pairs emitted
  /// per track in stack order (a child's end is clamped to its parent's);
  /// counters become 'C' events; thread labels become 'M' thread_name
  /// metadata. Timestamps are microseconds with nanosecond precision.
  [[nodiscard]] std::string to_chrome_json() const;
};

class Tracer {
 public:
  /// `capacity_per_thread` bounds events retained per thread; beyond it
  /// events are dropped (and counted), never overwritten.
  explicit Tracer(std::size_t capacity_per_thread = 1 << 16,
                  std::string process_name = "jem");
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Starts a nested span on the calling thread's track.
  [[nodiscard]] Span span(std::string_view name) { return {this, std::string(name)}; }

  /// Names the calling thread's track in exports (e.g. "rank 2"). Also
  /// registers the thread, so call it early to get low tids in spawn order.
  void set_thread_label(std::string_view label);

  /// Appends a fully-specified span (explicit track and times) — for
  /// modeled timelines where the clock is synthetic. Threads used only via
  /// record() can label tracks with set_track_label().
  void record(std::string_view name, std::uint32_t tid, std::uint64_t start_ns,
              std::uint64_t dur_ns, std::uint32_t depth = 0);

  /// Labels an arbitrary track id used with record().
  void set_track_label(std::uint32_t tid, std::string_view label);

  /// Records an instantaneous counter sample on the calling thread's track.
  void counter_sample(std::string_view name, double value);

  /// Monotonic nanoseconds since this tracer was constructed.
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

  [[nodiscard]] TraceSnapshot snapshot() const;

 private:
  friend class Span;
  using ThreadBuffer = detail::TracerThreadBuffer;

  ThreadBuffer& buffer_for_this_thread();
  void append(ThreadBuffer& buffer, TraceEvent event) noexcept;
  void end_span(std::string& name, std::uint64_t start_ns) noexcept;

  const std::uint64_t id_;  // process-unique, never reused
  const std::size_t capacity_;
  const std::string process_name_;
  const std::uint64_t epoch_ns_;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> threads_;
  std::vector<std::pair<std::uint32_t, std::string>> track_labels_;
};

}  // namespace jem::obs
