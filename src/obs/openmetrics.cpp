#include "obs/openmetrics.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace jem::obs {
namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

void append_type(std::string& out, const std::string& family,
                 std::string_view type) {
  out += "# TYPE ";
  out += family;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string openmetrics_family(std::string_view name) {
  std::string out = "jem_";
  out.reserve(name.size() + 4);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string openmetrics_sample(std::string_view family,
                               std::string_view labels, double value) {
  std::string out(family);
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  char buf[40];
  if (std::isfinite(value) &&
      value == static_cast<double>(static_cast<std::int64_t>(value))) {
    std::snprintf(buf, sizeof buf, "%" PRId64,
                  static_cast<std::int64_t>(value));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", value);
  }
  out += buf;
  out += '\n';
  return out;
}

std::string to_openmetrics(const MetricsSnapshot& snapshot,
                           std::string_view extra) {
  std::string out;
  out.reserve(4096);
  for (const MetricValue& metric : snapshot.entries) {
    const std::string family = openmetrics_family(metric.name);
    switch (metric.kind) {
      case MetricKind::kCounter: {
        append_type(out, family, "counter");
        out += family;
        out += "_total ";
        append_u64(out, metric.value);
        out += '\n';
        break;
      }
      case MetricKind::kGauge: {
        append_type(out, family, "gauge");
        out += family;
        out += ' ';
        append_i64(out, metric.level);
        out += '\n';
        break;
      }
      case MetricKind::kHistogram: {
        append_type(out, family, "histogram");
        // Cumulative buckets over the registry's sparse log2 bucket list.
        // Every populated bucket i becomes le="2^i - 1" except the top
        // bucket, which is open-ended and folds into +Inf.
        std::uint64_t cumulative = 0;
        for (const auto& [index, bucket_count] : metric.buckets) {
          cumulative += bucket_count;
          if (index >= Histogram::kBuckets - 1) continue;
          out += family;
          out += "_bucket{le=\"";
          append_u64(out, Histogram::bucket_upper(index));
          out += "\"} ";
          append_u64(out, cumulative);
          out += '\n';
        }
        out += family;
        out += "_bucket{le=\"+Inf\"} ";
        append_u64(out, metric.count);
        out += '\n';
        out += family;
        out += "_sum ";
        append_u64(out, metric.sum);
        out += '\n';
        out += family;
        out += "_count ";
        append_u64(out, metric.count);
        out += '\n';
        break;
      }
    }
  }
  out += extra;
  out += "# EOF\n";
  return out;
}

}  // namespace jem::obs
