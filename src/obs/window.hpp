// Sliding-window metrics (docs/observability.md "Windowed SLO metrics").
//
// The PR-5 Histogram is cumulative: a long-lived server's p99 regression
// from the last minute hides behind hours of history. WindowedHistogram
// keeps the same hot-path discipline (thread-striped relaxed atomics, fixed
// log2 buckets, no allocation after construction) but ages data out: time is
// divided into fixed-width frames (default 1 s); records land in a striped
// "active" accumulator; when the clock crosses a frame boundary the active
// cells are drained (atomic exchange, so no count is ever lost — a racing
// record is attributed at most one frame off) into a ring of frozen plain
// frames. A snapshot over a window of W frames sums the active accumulator
// plus the most recent W-1 frozen frames.
//
// Time is injectable: every mutating call takes an optional `now_ns`
// (nanoseconds on the caller's monotonic epoch — callers must be consistent)
// so tests script decay without sleeping. The no-argument overloads use
// steady_clock relative to construction.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"

namespace jem::obs {

/// Aggregated contents of one time window: mergeable by addition, with
/// log2-bucket quantile estimation. Matches Histogram's bucket layout.
struct WindowSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};

  void merge(const WindowSnapshot& other) noexcept;

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside the
  /// log2 bucket holding the target rank. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;
};

class WindowedHistogram {
 public:
  /// `frame_width` is the aging granularity; `frames` the ring depth. The
  /// longest answerable window is frames * frame_width (older frames are
  /// overwritten in place).
  explicit WindowedHistogram(
      std::chrono::nanoseconds frame_width = std::chrono::seconds(1),
      std::size_t frames = 300);

  void record(std::uint64_t value);
  void record(std::uint64_t value, std::uint64_t now_ns);

  /// Contents of the last `window` ending at `now_ns` (newest frames,
  /// including the still-open active frame). A window wider than the ring
  /// is clamped to the ring's span.
  [[nodiscard]] WindowSnapshot snapshot(std::chrono::nanoseconds window);
  [[nodiscard]] WindowSnapshot snapshot(std::chrono::nanoseconds window,
                                        std::uint64_t now_ns);

  /// Everything ever recorded (cumulative, like a plain Histogram).
  [[nodiscard]] WindowSnapshot cumulative() const noexcept;

  [[nodiscard]] std::chrono::nanoseconds frame_width() const noexcept {
    return frame_width_;
  }

  /// Nanoseconds since construction on the default (steady) clock — the
  /// epoch the no-argument overloads use.
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

 private:
  struct alignas(64) Stripe {
    std::array<std::atomic<std::uint64_t>, Histogram::kBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> count{0};
  };

  /// A frozen frame: plain integers, only touched under `mutex_`.
  struct Frame {
    std::uint64_t index = ~std::uint64_t{0};  ///< now_ns / frame_width.
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
  };

  /// Drains the active stripes into the ring for every frame boundary
  /// crossed up to `frame_index`. Caller holds `mutex_`.
  void advance_locked(std::uint64_t frame_index);

  /// Cheap check-and-rotate used by every mutating call.
  void maybe_advance(std::uint64_t now_ns);

  std::chrono::nanoseconds frame_width_;
  std::chrono::steady_clock::time_point epoch_;
  std::array<Stripe, kStripes> active_;
  std::atomic<std::uint64_t> active_index_{0};
  mutable std::mutex mutex_;  ///< Guards ring_, lifetime_ and rotation.
  std::vector<Frame> ring_;
  Frame lifetime_;  ///< Totals of everything ever drained out of `active_`.
};

/// Sliding-window event counter (errors, sheds): same frame machinery as
/// WindowedHistogram, scalar cells.
class WindowedCounter {
 public:
  explicit WindowedCounter(
      std::chrono::nanoseconds frame_width = std::chrono::seconds(1),
      std::size_t frames = 300);

  void add(std::uint64_t n = 1);
  void add(std::uint64_t n, std::uint64_t now_ns);

  /// Events in the last `window` ending at `now_ns`.
  [[nodiscard]] std::uint64_t total(std::chrono::nanoseconds window);
  [[nodiscard]] std::uint64_t total(std::chrono::nanoseconds window,
                                    std::uint64_t now_ns);

  /// Events ever recorded.
  [[nodiscard]] std::uint64_t cumulative() const noexcept;

  [[nodiscard]] std::uint64_t now_ns() const noexcept;

 private:
  struct Frame {
    std::uint64_t index = ~std::uint64_t{0};
    std::uint64_t count = 0;
  };

  void advance_locked(std::uint64_t frame_index);
  void maybe_advance(std::uint64_t now_ns);

  std::chrono::nanoseconds frame_width_;
  std::chrono::steady_clock::time_point epoch_;
  std::array<detail::StripedCell, kStripes> active_;
  std::atomic<std::uint64_t> active_index_{0};
  mutable std::mutex mutex_;
  std::vector<Frame> ring_;
  std::uint64_t lifetime_count_ = 0;
};

}  // namespace jem::obs
