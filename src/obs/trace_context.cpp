#include "obs/trace_context.hpp"

#include <atomic>
#include <chrono>

namespace jem::obs {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

/// SplitMix64 step (same constants as util::SplitMix64; duplicated here so
/// jem_obs stays dependency-free).
std::uint64_t mix(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t next_id_word() noexcept {
  static std::atomic<std::uint64_t> counter{[] {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    auto seed = static_cast<std::uint64_t>(now.count());
    // Fold in address-space entropy so two processes started in the same
    // clock tick still diverge.
    static int anchor = 0;
    seed ^= reinterpret_cast<std::uintptr_t>(&anchor);
    return mix(seed);
  }()};
  return mix(counter.fetch_add(0x9e3779b97f4a7c15ULL,
                               std::memory_order_relaxed));
}

bool is_lower_hex(std::string_view s) noexcept {
  for (char c : s) {
    const bool digit = c >= '0' && c <= '9';
    const bool lower = c >= 'a' && c <= 'f';
    if (!digit && !lower) return false;
  }
  return true;
}

bool is_all_zero(std::string_view s) noexcept {
  for (char c : s) {
    if (c != '0') return false;
  }
  return true;
}

}  // namespace

std::string to_hex(std::uint64_t n, int digits) {
  std::string out(static_cast<std::size_t>(digits), '0');
  for (int i = digits - 1; i >= 0 && n != 0; --i) {
    out[static_cast<std::size_t>(i)] = kHexDigits[n & 0xf];
    n >>= 4;
  }
  return out;
}

TraceContext generate_trace_context() {
  TraceContext ctx;
  ctx.trace_id = to_hex(next_id_word(), 16) + to_hex(next_id_word(), 16);
  ctx.span_id = to_hex(next_id_word(), 16);
  // All-zero ids are invalid per spec; the mixer makes them astronomically
  // unlikely, but a guaranteed-valid id is cheap.
  if (is_all_zero(ctx.trace_id)) ctx.trace_id[31] = '1';
  if (is_all_zero(ctx.span_id)) ctx.span_id[15] = '1';
  return ctx;
}

TraceContext child_of(const TraceContext& parent) {
  TraceContext ctx;
  ctx.trace_id = parent.trace_id;
  ctx.span_id = to_hex(next_id_word(), 16);
  if (is_all_zero(ctx.span_id)) ctx.span_id[15] = '1';
  return ctx;
}

std::optional<TraceContext> parse_traceparent(std::string_view header) {
  // 00-<32>-<16>-<2> = 55 characters.
  if (header.size() != 55) return std::nullopt;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') {
    return std::nullopt;
  }
  const std::string_view version = header.substr(0, 2);
  const std::string_view trace_id = header.substr(3, 32);
  const std::string_view span_id = header.substr(36, 16);
  const std::string_view flags = header.substr(53, 2);
  if (!is_lower_hex(version) || !is_lower_hex(trace_id) ||
      !is_lower_hex(span_id) || !is_lower_hex(flags)) {
    return std::nullopt;
  }
  if (version == "ff") return std::nullopt;
  if (is_all_zero(trace_id) || is_all_zero(span_id)) return std::nullopt;
  return TraceContext{std::string(trace_id), std::string(span_id)};
}

std::string to_traceparent(const TraceContext& ctx) {
  std::string out;
  out.reserve(55);
  out += "00-";
  out += ctx.trace_id;
  out += '-';
  out += ctx.span_id;
  out += "-01";
  return out;
}

}  // namespace jem::obs
