// Lock-cheap metrics registry (docs/observability.md).
//
// Three metric kinds share one design: hot-path updates touch only a
// thread-striped atomic cell (relaxed, no locks, no allocation), and a
// snapshot aggregates the stripes. Each thread is assigned a process-wide
// stripe slot on first use, so with up to kStripes concurrently-updating
// threads every thread owns a private cache line — the "thread-local shard"
// — and beyond that threads share stripes but stay correct (atomics).
//
//  * Counter    — monotonically increasing u64 (events, bytes, nanoseconds).
//  * Gauge      — instantaneous i64 level (queue depth, active workers).
//  * Histogram  — fixed log2 buckets: bucket i counts values v with
//    bit_width(v) == i, i.e. v in [2^(i-1), 2^i), bucket 0 counts v == 0.
//    No configuration, no allocation, mergeable by addition.
//
// Metrics are owned by a Registry and identified by name; handle resolution
// (string lookup, mutex) happens once at setup, never on the update path.
// Registry::snapshot() produces a name-sorted MetricsSnapshot that exports
// as deterministic JSON — with `include_timing = false`, nanosecond-valued
// metrics are dropped so a serial run's export is byte-stable across
// repeat runs (the golden-test contract).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace jem::obs {

/// What a metric's value measures; `kNanos` marks wall-clock-derived values
/// that deterministic exports must exclude.
enum class Unit { kCount, kBytes, kNanos };

[[nodiscard]] std::string_view unit_name(Unit unit) noexcept;

/// Number of update stripes (power of two). Also the bound on truly
/// contention-free concurrent writers.
inline constexpr std::size_t kStripes = 16;

/// Process-wide stripe slot of the calling thread (stable per thread).
[[nodiscard]] std::size_t this_thread_stripe() noexcept;

namespace detail {
struct alignas(64) StripedCell {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cells_[this_thread_stripe()].value.fetch_add(n,
                                                 std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& cell : cells_) {
      sum += cell.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  std::array<detail::StripedCell, kStripes> cells_;
};

/// A level, not a rate: set() is last-writer-wins, add() adjusts. Gauges are
/// typically written from one site (e.g. the queue producer), so a single
/// atomic suffices — no striping.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Histogram {
 public:
  /// log2 buckets: index = bit_width(v) clamped to kBuckets - 1; 0 for 0.
  static constexpr std::size_t kBuckets = 64;

  static constexpr std::size_t bucket_of(std::uint64_t v) noexcept {
    const auto width = static_cast<std::size_t>(std::bit_width(v));
    return width < kBuckets ? width : kBuckets - 1;
  }

  /// Inclusive upper bound of bucket `i` (values with bit_width == i).
  static constexpr std::uint64_t bucket_upper(std::size_t i) noexcept {
    if (i == 0) return 0;
    if (i >= kBuckets - 1) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

  void record(std::uint64_t v) noexcept {
    Stripe& stripe = stripes_[this_thread_stripe()];
    stripe.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    stripe.sum.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] std::uint64_t sum() const noexcept;

  /// Aggregated bucket counts (kBuckets entries).
  [[nodiscard]] std::array<std::uint64_t, kBuckets> buckets() const noexcept;

 private:
  struct alignas(64) Stripe {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Stripe, kStripes> stripes_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric's aggregated state at snapshot time.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  Unit unit = Unit::kCount;
  std::uint64_t value = 0;  // counter total
  std::int64_t level = 0;   // gauge level
  std::uint64_t count = 0;  // histogram sample count
  std::uint64_t sum = 0;    // histogram sample sum
  /// Histogram: non-empty (bucket index, count) pairs, index ascending.
  std::vector<std::pair<std::size_t, std::uint64_t>> buckets;
};

struct MetricsSnapshot {
  std::vector<MetricValue> entries;  // sorted by name

  [[nodiscard]] const MetricValue* find(std::string_view name) const noexcept;

  /// Deterministic JSON export: one `{"metrics": [...]}` object, entries
  /// name-sorted, integers as digit strings. With `include_timing` false,
  /// every Unit::kNanos metric is dropped — the export of a serial run is
  /// then byte-stable across repeat runs.
  [[nodiscard]] std::string to_json(bool include_timing = true) const;
};

/// Named-metric owner. Handles returned by counter()/gauge()/histogram()
/// are stable for the registry's lifetime; creation takes a mutex, updates
/// through the handles never do. Requesting an existing name with a
/// different kind throws std::logic_error (unit mismatches too).
class Registry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name,
                                 Unit unit = Unit::kCount);
  [[nodiscard]] Gauge& gauge(std::string_view name, Unit unit = Unit::kCount);
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     Unit unit = Unit::kCount);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    MetricKind kind;
    Unit unit;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& resolve(std::string_view name, MetricKind kind, Unit unit);

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> metrics_;
};

/// The process-wide registry free functions (gzip inflate accounting) and
/// jem_map default to. Library code that takes an explicit Registry* must
/// prefer it over this.
[[nodiscard]] Registry& default_registry();

}  // namespace jem::obs
