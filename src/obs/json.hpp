// Minimal dependency-free JSON support for the observability layer: a
// parser into a Value tree (used by the trace/metrics validators and the
// golden tests) and the escaping helper the exporters share. This is not a
// general-purpose JSON library — it accepts exactly RFC 8259 documents, has
// no streaming mode, and keeps numbers as doubles (metric exporters emit
// integers as digit strings, which round-trip exactly up to 2^53; the
// validators only need well-formedness and field lookups).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace jem::obs::json {

/// A parse failure, carrying the byte offset where the input went wrong.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, std::size_t offset)
      : std::runtime_error(std::move(message) + " at byte " +
                           std::to_string(offset)),
        offset_(offset) {}

  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// One JSON value. Object member order is preserved (exporters write sorted
/// keys; the golden tests rely on byte-stable output, not on this parser).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::kString;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::kNumber;
  }

  /// First member named `key` (objects only); nullptr when absent.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;
};

/// Parses one complete JSON document (leading/trailing whitespace allowed;
/// anything after the document is an error). Throws ParseError.
[[nodiscard]] Value parse(std::string_view text);

/// Escapes a string for embedding between JSON quotes (", \, control chars).
[[nodiscard]] std::string escape(std::string_view text);

}  // namespace jem::obs::json
