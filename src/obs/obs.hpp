// Umbrella header for the observability layer: the metrics Registry, the
// span Tracer, and the two small adapters library code takes them through.
//
// ObsHooks is the pass-by-value handle engine/mpisim/IO entry points accept
// (both pointers optional — a default ObsHooks{} disables everything and
// instrumented code pays one branch). StageSpan unifies the previously
// duplicated "WallTimer + atomic ns accumulator" plumbing with tracing:
// one RAII object both accumulates elapsed nanoseconds into stats and, when
// a tracer is attached, records the same interval as a span.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace jem::obs {

/// Optional instrumentation sinks threaded through library entry points.
struct ObsHooks {
  Registry* metrics = nullptr;
  Tracer* tracer = nullptr;

  [[nodiscard]] bool enabled() const noexcept {
    return metrics != nullptr || tracer != nullptr;
  }
};

/// Times [construction, finish/destruction) on the monotonic clock, adds
/// the elapsed nanoseconds to `accum_ns` (when given), and records the
/// interval as a tracer span (when a tracer is attached). Replaces paired
/// WallTimer-plus-atomic-add call sites.
class StageSpan {
 public:
  StageSpan(const ObsHooks& obs, std::string_view name,
            std::atomic<std::uint64_t>* accum_ns = nullptr)
      : accum_ns_(accum_ns), start_(Clock::now()) {
    if (obs.tracer != nullptr) span_ = obs.tracer->span(name);
  }

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

  ~StageSpan() { finish(); }

  /// Stops the clock now (idempotent); returns elapsed nanoseconds.
  std::uint64_t finish() noexcept {
    if (done_) return elapsed_ns_;
    done_ = true;
    elapsed_ns_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
    if (accum_ns_ != nullptr) {
      accum_ns_->fetch_add(elapsed_ns_, std::memory_order_relaxed);
    }
    span_.finish();
    return elapsed_ns_;
  }

 private:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady);

  std::atomic<std::uint64_t>* accum_ns_;
  Clock::time_point start_;
  Span span_;
  std::uint64_t elapsed_ns_ = 0;
  bool done_ = false;
};

}  // namespace jem::obs
