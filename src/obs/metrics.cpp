#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/json.hpp"

namespace jem::obs {

std::string_view unit_name(Unit unit) noexcept {
  switch (unit) {
    case Unit::kCount: return "count";
    case Unit::kBytes: return "bytes";
    case Unit::kNanos: return "nanos";
  }
  return "count";
}

std::size_t this_thread_stripe() noexcept {
  // One process-wide stripe slot per thread, assigned round-robin on first
  // use. Slots are never reclaimed: with more than kStripes threads over a
  // process lifetime stripes are shared, which costs contention, not
  // correctness.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    for (const auto& bucket : stripe.buckets) {
      total += bucket.load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::uint64_t Histogram::sum() const noexcept {
  std::uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    total += stripe.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::buckets()
    const noexcept {
  std::array<std::uint64_t, kBuckets> out{};
  for (const Stripe& stripe : stripes_) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      out[i] += stripe.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

const MetricValue* MetricsSnapshot::find(std::string_view name) const noexcept {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const MetricValue& entry, std::string_view key) {
        return entry.name < key;
      });
  if (it == entries.end() || it->name != name) return nullptr;
  return &*it;
}

namespace {

std::string_view kind_name(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "counter";
}

}  // namespace

std::string MetricsSnapshot::to_json(bool include_timing) const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricValue& entry : entries) {
    if (!include_timing && entry.unit == Unit::kNanos) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += json::escape(entry.name);
    out += "\",\"kind\":\"";
    out += kind_name(entry.kind);
    out += "\",\"unit\":\"";
    out += unit_name(entry.unit);
    out += '"';
    switch (entry.kind) {
      case MetricKind::kCounter:
        out += ",\"value\":" + std::to_string(entry.value);
        break;
      case MetricKind::kGauge:
        out += ",\"value\":" + std::to_string(entry.level);
        break;
      case MetricKind::kHistogram:
        out += ",\"count\":" + std::to_string(entry.count);
        out += ",\"sum\":" + std::to_string(entry.sum);
        out += ",\"buckets\":[";
        for (std::size_t i = 0; i < entry.buckets.size(); ++i) {
          if (i != 0) out += ',';
          out += "[" + std::to_string(entry.buckets[i].first) + "," +
                 std::to_string(entry.buckets[i].second) + "]";
        }
        out += ']';
        break;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

Registry::Entry& Registry::resolve(std::string_view name, MetricKind kind,
                                   Unit unit) {
  std::lock_guard lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = kind;
    entry.unit = unit;
    switch (kind) {
      case MetricKind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered as " +
                           std::string(kind_name(it->second.kind)));
  } else if (it->second.unit != unit) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered with unit " +
                           std::string(unit_name(it->second.unit)));
  }
  return it->second;
}

Counter& Registry::counter(std::string_view name, Unit unit) {
  return *resolve(name, MetricKind::kCounter, unit).counter;
}

Gauge& Registry::gauge(std::string_view name, Unit unit) {
  return *resolve(name, MetricKind::kGauge, unit).gauge;
}

Histogram& Registry::histogram(std::string_view name, Unit unit) {
  return *resolve(name, MetricKind::kHistogram, unit).histogram;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mutex_);
  snap.entries.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    MetricValue value;
    value.name = name;
    value.kind = entry.kind;
    value.unit = entry.unit;
    switch (entry.kind) {
      case MetricKind::kCounter:
        value.value = entry.counter->value();
        break;
      case MetricKind::kGauge:
        value.level = entry.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const auto buckets = entry.histogram->buckets();
        for (std::size_t i = 0; i < buckets.size(); ++i) {
          if (buckets[i] != 0) {
            value.buckets.emplace_back(i, buckets[i]);
            value.count += buckets[i];
          }
        }
        value.sum = entry.histogram->sum();
        break;
      }
    }
    snap.entries.push_back(std::move(value));
  }
  // std::map iterates in key order, so entries are already name-sorted.
  return snap;
}

Registry& default_registry() {
  static Registry registry;
  return registry;
}

}  // namespace jem::obs
