// OpenMetrics / Prometheus text exposition (docs/observability.md
// "Prometheus quickstart").
//
// Renders a MetricsSnapshot in the OpenMetrics text format so a stock
// Prometheus can scrape `jem serve` directly. The JSON export stays the
// default and byte-stable; this exposition is negotiated by the server via
// `Accept: application/openmetrics-text`.
//
// Mapping from the registry's model:
//   * names: dots become underscores and every family gets a `jem_` prefix
//     (`serve.http.requests` -> `jem_serve_http_requests`);
//   * counters: `# TYPE <family> counter` + `<family>_total <value>`;
//   * gauges: `# TYPE <family> gauge` + `<family> <value>`;
//   * histograms: cumulative `<family>_bucket{le="..."}` series over the
//     registry's log2 buckets (upper bounds are 2^i - 1), a final
//     `le="+Inf"` bucket equal to `_count`, plus `_sum` and `_count`;
//   * the exposition ends with the mandatory `# EOF` line.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace jem::obs {

/// Content-Type value for the text exposition.
inline constexpr std::string_view kOpenMetricsContentType =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// Sanitizes a registry metric name into an OpenMetrics family name:
/// `jem_` prefix, [a-zA-Z0-9_] body (anything else becomes '_').
[[nodiscard]] std::string openmetrics_family(std::string_view name);

/// One sample line: `name{labels} value`. `labels` is the raw inner label
/// text (e.g. `window="10s",quantile="0.99"`), empty for none. `value` is
/// rendered with enough precision to round-trip doubles.
[[nodiscard]] std::string openmetrics_sample(std::string_view family,
                                             std::string_view labels,
                                             double value);

/// Full exposition of `snapshot`. `extra` (may be empty) is appended
/// verbatim after the registry families and before the `# EOF` terminator —
/// the server uses it for windowed SLO series.
[[nodiscard]] std::string to_openmetrics(const MetricsSnapshot& snapshot,
                                         std::string_view extra = {});

}  // namespace jem::obs
