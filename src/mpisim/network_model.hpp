// α-β (latency/bandwidth) cost model for the cluster the paper evaluated on
// (9 nodes, 10 Gbps Ethernet). The staged BSP executor uses this model to
// charge communication time to the measured payload volumes, reproducing the
// paper's communication-fraction analysis (Fig 8) and the O(τ log p + μ·V)
// allgather term of the complexity analysis (§III-C1).
#pragma once

#include <cstdint>

namespace jem::mpisim {

struct NetworkModel {
  /// Per-message latency in seconds (τ). Default: 50 µs, typical for
  /// 10 GbE + TCP.
  double latency_s = 50e-6;

  /// Reciprocal bandwidth in seconds per byte (μ). Default: 10 Gbps payload
  /// rate → 1.25 GB/s → 8e-10 s/B.
  double sec_per_byte = 8e-10;

  /// Time for MPI_Allgatherv on p ranks where the union of all contributions
  /// is total_bytes and every rank must end with the full union.
  /// Ring algorithm: p-1 steps, each moving total_bytes/p on average:
  ///   τ·(p-1) + μ·total_bytes·(p-1)/p
  /// For p=1 the collective is free.
  [[nodiscard]] double allgatherv_s(int p, std::uint64_t total_bytes) const;

  /// Time for a barrier: dissemination algorithm, ⌈log2 p⌉ rounds of latency.
  [[nodiscard]] double barrier_s(int p) const;

  /// Time for a reduction of `bytes` per rank to one root (binomial tree).
  [[nodiscard]] double reduce_s(int p, std::uint64_t bytes) const;

  /// Point-to-point message of `bytes`.
  [[nodiscard]] double p2p_s(std::uint64_t bytes) const;
};

}  // namespace jem::mpisim
