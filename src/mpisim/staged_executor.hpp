// StagedExecutor: deterministic bulk-synchronous execution of an SPMD
// program for performance studies on hosts with fewer cores than ranks.
//
// The paper measured strong scaling on a 9-node cluster (p = 4..64). This
// container exposes a single CPU core, so running 64 communicating threads
// measures only contention, not the algorithm. JEM-mapper is bulk-synchronous
// (compute supersteps separated by one collective), which means its parallel
// runtime decomposes exactly as
//
//     Σ_steps max_rank(compute_time) + Σ_collectives network_time
//
// The staged executor evaluates that decomposition directly: each rank's
// share of a compute superstep runs *sequentially* and is wall-timed in
// isolation, and each collective is charged with the α-β NetworkModel using
// the real payload volume. The result is the modeled parallel runtime and a
// per-step breakdown — the quantities behind Table II, Fig 7 and Fig 8.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "mpisim/network_model.hpp"
#include "util/fault_plan.hpp"

namespace jem::obs {
class Registry;  // obs/metrics.hpp
class Tracer;    // obs/trace.hpp
}  // namespace jem::obs

namespace jem::mpisim {

class StagedExecutor {
 public:
  StagedExecutor(int num_ranks, NetworkModel model = {});

  [[nodiscard]] int num_ranks() const noexcept { return num_ranks_; }
  [[nodiscard]] const NetworkModel& model() const noexcept { return model_; }

  /// Attaches a fault plan (not owned; null detaches). Every step name is a
  /// fault site keyed by (rank, name, per-name invocation count). Because
  /// the executor is a performance *model*, faults alter the modeled
  /// timeline, not real execution: kDelay adds the delay to the rank's
  /// modeled step time, and kAbort marks the rank failed — its work still
  /// runs (the results must exist) but is re-billed to a "recover:<name>"
  /// step, modeling a survivor redoing the lost partition serially. kDrop
  /// has no modeled cost and is ignored.
  void set_fault_plan(const util::FaultPlan* plan) noexcept { plan_ = plan; }

  /// Ranks marked failed by kAbort decisions so far, ascending.
  [[nodiscard]] std::vector<int> failed_ranks() const;

  [[nodiscard]] std::uint64_t faults_injected() const noexcept {
    return faults_injected_;
  }

  /// Runs fn(rank) for every rank in turn, timing each. The step's parallel
  /// cost is the maximum per-rank time.
  void compute_step(std::string_view name, const std::function<void(int)>& fn);

  /// Charges an allgatherv whose union payload is `total_bytes`.
  void comm_allgatherv(std::string_view name, std::uint64_t total_bytes);

  /// Charges a barrier.
  void comm_barrier(std::string_view name);

  /// Charges a reduction of `bytes` per rank.
  void comm_reduce(std::string_view name, std::uint64_t bytes);

  struct StepRecord {
    std::string name;
    bool is_comm = false;
    double cost_s = 0.0;              // max-rank time or modeled comm time
    std::vector<double> per_rank_s;   // empty for comm steps
    std::uint64_t bytes = 0;          // comm steps only
  };

  [[nodiscard]] const std::vector<StepRecord>& steps() const noexcept {
    return steps_;
  }

  /// Modeled parallel makespan: sum of step costs.
  [[nodiscard]] double total_s() const noexcept;
  [[nodiscard]] double compute_s() const noexcept;
  [[nodiscard]] double comm_s() const noexcept;

  /// Cost of the step with the given name (0 if absent; sums duplicates).
  [[nodiscard]] double step_s(std::string_view name) const noexcept;

  /// Total fault-injected delay folded into the modeled timeline so far —
  /// the modeled-vs-actual gap: total_s() minus this is what the run would
  /// have cost without the injected delays.
  [[nodiscard]] double injected_delay_s() const noexcept {
    return injected_delay_s_;
  }

  /// Synthesizes the modeled timeline into `tracer` via record(): compute
  /// steps become one span per rank on track `tid == rank` (labeled
  /// "rank N"), comm steps one span across every rank's track, and
  /// "recover:<step>" re-bills one span per recovered partition on a
  /// dedicated "recovery" track (tid == num_ranks). Timestamps start at
  /// `base_ns` and advance by each step's modeled cost, so the exported
  /// Chrome trace reads as the bulk-synchronous schedule the model charges
  /// — not as wall-clock of the sequential measurement.
  void export_trace(obs::Tracer& tracer, std::uint64_t base_ns = 0) const;

  /// Adds the run's modeled totals to `registry` under `staged.*` names:
  /// step/fault counters plus kNanos counters for total, compute, comm and
  /// injected-delay time.
  void publish(obs::Registry& registry) const;

 private:
  /// Fault decision for the current invocation of `name` at `rank`
  /// (kAnyRank for comm steps). Counts fired faults.
  util::FaultDecision decide_fault(int rank, std::string_view name,
                                   std::uint64_t invocation);

  /// Adds any injected delay for this comm step's invocation to `cost`
  /// (comm faults are keyed rank-agnostically on kAnyRank).
  void comm_delay_s(std::string_view name, double& cost);

  int num_ranks_;
  NetworkModel model_;
  std::vector<StepRecord> steps_;

  const util::FaultPlan* plan_ = nullptr;
  std::map<std::string, std::uint64_t, std::less<>> site_calls_;
  std::vector<char> failed_;
  std::uint64_t faults_injected_ = 0;
  double injected_delay_s_ = 0.0;
};

}  // namespace jem::mpisim
