#include "mpisim/staged_executor.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/timer.hpp"

namespace jem::mpisim {

StagedExecutor::StagedExecutor(int num_ranks, NetworkModel model)
    : num_ranks_(num_ranks),
      model_(model),
      failed_(static_cast<std::size_t>(num_ranks), 0) {
  if (num_ranks <= 0) {
    throw std::invalid_argument("StagedExecutor: num_ranks must be positive");
  }
}

std::vector<int> StagedExecutor::failed_ranks() const {
  std::vector<int> ranks;
  for (int rank = 0; rank < num_ranks_; ++rank) {
    if (failed_[static_cast<std::size_t>(rank)] != 0) ranks.push_back(rank);
  }
  return ranks;
}

util::FaultDecision StagedExecutor::decide_fault(int rank,
                                                 std::string_view name,
                                                 std::uint64_t invocation) {
  if (plan_ == nullptr || plan_->empty()) return {};
  const util::FaultDecision decision = plan_->decide(rank, name, invocation);
  if (decision.action != util::FaultAction::kNone) ++faults_injected_;
  return decision;
}

void StagedExecutor::compute_step(std::string_view name,
                                  const std::function<void(int)>& fn) {
  const std::uint64_t invocation = [&] {
    const auto it = site_calls_.find(name);
    if (it != site_calls_.end()) return it->second++;
    site_calls_.emplace(std::string(name), 1);
    return std::uint64_t{0};
  }();

  StepRecord record;
  record.name = std::string(name);
  record.per_rank_s.reserve(static_cast<std::size_t>(num_ranks_));
  std::vector<double> recovered;
  for (int rank = 0; rank < num_ranks_; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    const util::FaultDecision decision = decide_fault(rank, name, invocation);
    if (decision.action == util::FaultAction::kAbort) failed_[r] = 1;
    // The work always runs (downstream steps need the results to exist);
    // a failed rank's time is billed to the recovery step instead.
    util::WallTimer timer;
    fn(rank);
    const double elapsed = timer.elapsed_s();
    if (failed_[r] != 0) {
      record.per_rank_s.push_back(0.0);
      recovered.push_back(elapsed);
      continue;
    }
    double modeled = elapsed;
    if (decision.action == util::FaultAction::kDelay) {
      modeled += static_cast<double>(decision.delay.count()) / 1000.0;
    }
    record.per_rank_s.push_back(modeled);
  }
  record.cost_s =
      *std::max_element(record.per_rank_s.begin(), record.per_rank_s.end());
  steps_.push_back(std::move(record));

  if (!recovered.empty()) {
    // Lost partitions are redone serially by a survivor: sum, not max.
    StepRecord recover;
    recover.name = "recover:" + std::string(name);
    double sum = 0.0;
    for (const double s : recovered) sum += s;
    recover.cost_s = sum;
    recover.per_rank_s = std::move(recovered);
    steps_.push_back(std::move(recover));
  }
}

void StagedExecutor::comm_delay_s(std::string_view name, double& cost) {
  const std::uint64_t invocation = [&] {
    const auto it = site_calls_.find(name);
    if (it != site_calls_.end()) return it->second++;
    site_calls_.emplace(std::string(name), 1);
    return std::uint64_t{0};
  }();
  const util::FaultDecision decision =
      decide_fault(util::FaultPlan::kAnyRank, name, invocation);
  if (decision.action == util::FaultAction::kDelay) {
    cost += static_cast<double>(decision.delay.count()) / 1000.0;
  }
}

void StagedExecutor::comm_allgatherv(std::string_view name,
                                     std::uint64_t total_bytes) {
  double cost = model_.allgatherv_s(num_ranks_, total_bytes);
  comm_delay_s(name, cost);
  steps_.push_back({std::string(name), true, cost, {}, total_bytes});
}

void StagedExecutor::comm_barrier(std::string_view name) {
  double cost = model_.barrier_s(num_ranks_);
  comm_delay_s(name, cost);
  steps_.push_back({std::string(name), true, cost, {}, 0});
}

void StagedExecutor::comm_reduce(std::string_view name, std::uint64_t bytes) {
  double cost = model_.reduce_s(num_ranks_, bytes);
  comm_delay_s(name, cost);
  steps_.push_back({std::string(name), true, cost, {}, bytes});
}

double StagedExecutor::total_s() const noexcept {
  double sum = 0.0;
  for (const StepRecord& step : steps_) sum += step.cost_s;
  return sum;
}

double StagedExecutor::compute_s() const noexcept {
  double sum = 0.0;
  for (const StepRecord& step : steps_) {
    if (!step.is_comm) sum += step.cost_s;
  }
  return sum;
}

double StagedExecutor::comm_s() const noexcept {
  double sum = 0.0;
  for (const StepRecord& step : steps_) {
    if (step.is_comm) sum += step.cost_s;
  }
  return sum;
}

double StagedExecutor::step_s(std::string_view name) const noexcept {
  double sum = 0.0;
  for (const StepRecord& step : steps_) {
    if (step.name == name) sum += step.cost_s;
  }
  return sum;
}

}  // namespace jem::mpisim
