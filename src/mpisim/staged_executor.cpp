#include "mpisim/staged_executor.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace jem::mpisim {

StagedExecutor::StagedExecutor(int num_ranks, NetworkModel model)
    : num_ranks_(num_ranks),
      model_(model),
      failed_(static_cast<std::size_t>(num_ranks), 0) {
  if (num_ranks <= 0) {
    throw std::invalid_argument("StagedExecutor: num_ranks must be positive");
  }
}

std::vector<int> StagedExecutor::failed_ranks() const {
  std::vector<int> ranks;
  for (int rank = 0; rank < num_ranks_; ++rank) {
    if (failed_[static_cast<std::size_t>(rank)] != 0) ranks.push_back(rank);
  }
  return ranks;
}

util::FaultDecision StagedExecutor::decide_fault(int rank,
                                                 std::string_view name,
                                                 std::uint64_t invocation) {
  if (plan_ == nullptr || plan_->empty()) return {};
  const util::FaultDecision decision = plan_->decide(rank, name, invocation);
  if (decision.action != util::FaultAction::kNone) ++faults_injected_;
  return decision;
}

void StagedExecutor::compute_step(std::string_view name,
                                  const std::function<void(int)>& fn) {
  const std::uint64_t invocation = [&] {
    const auto it = site_calls_.find(name);
    if (it != site_calls_.end()) return it->second++;
    site_calls_.emplace(std::string(name), 1);
    return std::uint64_t{0};
  }();

  StepRecord record;
  record.name = std::string(name);
  record.per_rank_s.reserve(static_cast<std::size_t>(num_ranks_));
  std::vector<double> recovered;
  for (int rank = 0; rank < num_ranks_; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    const util::FaultDecision decision = decide_fault(rank, name, invocation);
    if (decision.action == util::FaultAction::kAbort) failed_[r] = 1;
    // The work always runs (downstream steps need the results to exist);
    // a failed rank's time is billed to the recovery step instead.
    util::WallTimer timer;
    fn(rank);
    const double elapsed = timer.elapsed_s();
    if (failed_[r] != 0) {
      record.per_rank_s.push_back(0.0);
      recovered.push_back(elapsed);
      continue;
    }
    double modeled = elapsed;
    if (decision.action == util::FaultAction::kDelay) {
      const double delay_s =
          static_cast<double>(decision.delay.count()) / 1000.0;
      modeled += delay_s;
      injected_delay_s_ += delay_s;
    }
    record.per_rank_s.push_back(modeled);
  }
  record.cost_s =
      *std::max_element(record.per_rank_s.begin(), record.per_rank_s.end());
  steps_.push_back(std::move(record));

  if (!recovered.empty()) {
    // Lost partitions are redone serially by a survivor: sum, not max.
    StepRecord recover;
    recover.name = "recover:" + std::string(name);
    double sum = 0.0;
    for (const double s : recovered) sum += s;
    recover.cost_s = sum;
    recover.per_rank_s = std::move(recovered);
    steps_.push_back(std::move(recover));
  }
}

void StagedExecutor::comm_delay_s(std::string_view name, double& cost) {
  const std::uint64_t invocation = [&] {
    const auto it = site_calls_.find(name);
    if (it != site_calls_.end()) return it->second++;
    site_calls_.emplace(std::string(name), 1);
    return std::uint64_t{0};
  }();
  const util::FaultDecision decision =
      decide_fault(util::FaultPlan::kAnyRank, name, invocation);
  if (decision.action == util::FaultAction::kDelay) {
    const double delay_s =
        static_cast<double>(decision.delay.count()) / 1000.0;
    cost += delay_s;
    injected_delay_s_ += delay_s;
  }
}

void StagedExecutor::comm_allgatherv(std::string_view name,
                                     std::uint64_t total_bytes) {
  double cost = model_.allgatherv_s(num_ranks_, total_bytes);
  comm_delay_s(name, cost);
  steps_.push_back({std::string(name), true, cost, {}, total_bytes});
}

void StagedExecutor::comm_barrier(std::string_view name) {
  double cost = model_.barrier_s(num_ranks_);
  comm_delay_s(name, cost);
  steps_.push_back({std::string(name), true, cost, {}, 0});
}

void StagedExecutor::comm_reduce(std::string_view name, std::uint64_t bytes) {
  double cost = model_.reduce_s(num_ranks_, bytes);
  comm_delay_s(name, cost);
  steps_.push_back({std::string(name), true, cost, {}, bytes});
}

double StagedExecutor::total_s() const noexcept {
  double sum = 0.0;
  for (const StepRecord& step : steps_) sum += step.cost_s;
  return sum;
}

double StagedExecutor::compute_s() const noexcept {
  double sum = 0.0;
  for (const StepRecord& step : steps_) {
    if (!step.is_comm) sum += step.cost_s;
  }
  return sum;
}

double StagedExecutor::comm_s() const noexcept {
  double sum = 0.0;
  for (const StepRecord& step : steps_) {
    if (step.is_comm) sum += step.cost_s;
  }
  return sum;
}

double StagedExecutor::step_s(std::string_view name) const noexcept {
  double sum = 0.0;
  for (const StepRecord& step : steps_) {
    if (step.name == name) sum += step.cost_s;
  }
  return sum;
}

namespace {

std::uint64_t to_ns(double seconds) {
  return seconds <= 0.0 ? 0
                        : static_cast<std::uint64_t>(seconds * 1e9 + 0.5);
}

}  // namespace

void StagedExecutor::export_trace(obs::Tracer& tracer,
                                  std::uint64_t base_ns) const {
  const int recovery_track = num_ranks_;
  for (int rank = 0; rank < num_ranks_; ++rank) {
    tracer.set_track_label(rank, "rank " + std::to_string(rank));
  }
  tracer.set_track_label(recovery_track, "recovery");

  std::uint64_t now_ns = base_ns;
  for (const StepRecord& step : steps_) {
    const std::uint64_t cost_ns = to_ns(step.cost_s);
    if (step.is_comm) {
      // A collective occupies every rank for the same modeled window.
      for (int rank = 0; rank < num_ranks_; ++rank) {
        tracer.record(step.name, rank, now_ns, cost_ns);
      }
    } else if (step.name.starts_with("recover:")) {
      // Recovered partitions replay serially on the survivor's track.
      std::uint64_t at_ns = now_ns;
      for (const double part_s : step.per_rank_s) {
        const std::uint64_t part_ns = to_ns(part_s);
        tracer.record(step.name, recovery_track, at_ns, part_ns);
        at_ns += part_ns;
      }
    } else {
      for (std::size_t r = 0; r < step.per_rank_s.size(); ++r) {
        tracer.record(step.name, static_cast<int>(r), now_ns,
                      to_ns(step.per_rank_s[r]));
      }
    }
    now_ns += cost_ns;
  }
}

void StagedExecutor::publish(obs::Registry& registry) const {
  std::uint64_t comm_steps = 0;
  std::uint64_t recover_steps = 0;
  for (const StepRecord& step : steps_) {
    if (step.is_comm) ++comm_steps;
    if (step.name.starts_with("recover:")) ++recover_steps;
  }
  registry.counter("staged.steps").add(steps_.size());
  registry.counter("staged.comm_steps").add(comm_steps);
  registry.counter("staged.recover_steps").add(recover_steps);
  registry.counter("staged.faults_injected").add(faults_injected_);
  registry.counter("staged.total_ns", obs::Unit::kNanos).add(to_ns(total_s()));
  registry.counter("staged.compute_ns", obs::Unit::kNanos)
      .add(to_ns(compute_s()));
  registry.counter("staged.comm_ns", obs::Unit::kNanos).add(to_ns(comm_s()));
  registry.counter("staged.injected_delay_ns", obs::Unit::kNanos)
      .add(to_ns(injected_delay_s_));
}

}  // namespace jem::mpisim
