#include "mpisim/staged_executor.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/timer.hpp"

namespace jem::mpisim {

StagedExecutor::StagedExecutor(int num_ranks, NetworkModel model)
    : num_ranks_(num_ranks), model_(model) {
  if (num_ranks <= 0) {
    throw std::invalid_argument("StagedExecutor: num_ranks must be positive");
  }
}

void StagedExecutor::compute_step(std::string_view name,
                                  const std::function<void(int)>& fn) {
  StepRecord record;
  record.name = std::string(name);
  record.per_rank_s.reserve(static_cast<std::size_t>(num_ranks_));
  for (int rank = 0; rank < num_ranks_; ++rank) {
    util::WallTimer timer;
    fn(rank);
    record.per_rank_s.push_back(timer.elapsed_s());
  }
  record.cost_s =
      *std::max_element(record.per_rank_s.begin(), record.per_rank_s.end());
  steps_.push_back(std::move(record));
}

void StagedExecutor::comm_allgatherv(std::string_view name,
                                     std::uint64_t total_bytes) {
  steps_.push_back({std::string(name), true,
                    model_.allgatherv_s(num_ranks_, total_bytes), {},
                    total_bytes});
}

void StagedExecutor::comm_barrier(std::string_view name) {
  steps_.push_back(
      {std::string(name), true, model_.barrier_s(num_ranks_), {}, 0});
}

void StagedExecutor::comm_reduce(std::string_view name, std::uint64_t bytes) {
  steps_.push_back(
      {std::string(name), true, model_.reduce_s(num_ranks_, bytes), {}, bytes});
}

double StagedExecutor::total_s() const noexcept {
  double sum = 0.0;
  for (const StepRecord& step : steps_) sum += step.cost_s;
  return sum;
}

double StagedExecutor::compute_s() const noexcept {
  double sum = 0.0;
  for (const StepRecord& step : steps_) {
    if (!step.is_comm) sum += step.cost_s;
  }
  return sum;
}

double StagedExecutor::comm_s() const noexcept {
  double sum = 0.0;
  for (const StepRecord& step : steps_) {
    if (step.is_comm) sum += step.cost_s;
  }
  return sum;
}

double StagedExecutor::step_s(std::string_view name) const noexcept {
  double sum = 0.0;
  for (const StepRecord& step : steps_) {
    if (step.name == name) sum += step.cost_s;
  }
  return sum;
}

}  // namespace jem::mpisim
