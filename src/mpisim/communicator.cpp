#include "mpisim/communicator.hpp"

#include <exception>
#include <thread>

namespace jem::mpisim {

namespace detail {

SharedState::Snapshot SharedState::exchange(int rank,
                                            std::vector<std::byte> bytes) {
  std::unique_lock lock(mutex_);
  const std::uint64_t my_generation = generation_;
  {
    std::lock_guard stats_lock(stats_mutex_);
    stats_.collective_bytes += bytes.size();
  }
  slots_[static_cast<std::size_t>(rank)] = std::move(bytes);
  ++arrived_;
  if (arrived_ == size_) {
    // Last arriver publishes the snapshot and resets the exchange area for
    // the next collective. Earlier ranks may already be blocked in the next
    // exchange; the generation counter keeps the rounds separate.
    snapshot_ = std::make_shared<const std::vector<std::vector<std::byte>>>(
        std::move(slots_));
    slots_.assign(static_cast<std::size_t>(size_), {});
    arrived_ = 0;
    ++generation_;
    {
      std::lock_guard stats_lock(stats_mutex_);
      ++stats_.collective_calls;
    }
    cv_.notify_all();
    return snapshot_;
  }
  cv_.wait(lock, [&] { return generation_ != my_generation; });
  return snapshot_;
}

void SharedState::send(int from, int to, int tag,
                       std::vector<std::byte> bytes) {
  {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.p2p_messages;
    stats_.p2p_bytes += bytes.size();
  }
  std::lock_guard lock(mutex_);
  mailboxes_[ChannelKey{from, to, tag}].push_back(std::move(bytes));
  cv_.notify_all();
}

std::vector<std::byte> SharedState::recv(int to, int from, int tag) {
  std::unique_lock lock(mutex_);
  const ChannelKey key{from, to, tag};
  cv_.wait(lock, [&] {
    const auto it = mailboxes_.find(key);
    return it != mailboxes_.end() && !it->second.empty();
  });
  auto& queue = mailboxes_[key];
  std::vector<std::byte> bytes = std::move(queue.front());
  queue.pop_front();
  return bytes;
}

CommStats SharedState::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

}  // namespace detail

CommStats run_spmd(int size, const std::function<void(Comm&)>& body) {
  if (size <= 0) {
    throw std::invalid_argument("run_spmd: size must be positive");
  }
  auto state = std::make_shared<detail::SharedState>(size);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size));
  threads.reserve(static_cast<std::size_t>(size));
  for (int rank = 0; rank < size; ++rank) {
    threads.emplace_back([rank, state, &body, &errors] {
      Comm comm(rank, state);
      try {
        body(comm);
      } catch (...) {
        // Note: if the program was mid-collective on other ranks, they will
        // deadlock — exactly as an aborting MPI rank would hang its peers.
        // Well-formed SPMD programs either all throw or none do.
        errors[static_cast<std::size_t>(rank)] = std::current_exception();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return state->stats();
}

}  // namespace jem::mpisim
