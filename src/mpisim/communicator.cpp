#include "mpisim/communicator.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace jem::mpisim {

void CommStats::publish(obs::Registry& registry) const {
  registry.counter("mpisim.collective.calls").add(collective_calls);
  registry.counter("mpisim.collective.bytes", obs::Unit::kBytes)
      .add(collective_bytes);
  registry.counter("mpisim.p2p.messages").add(p2p_messages);
  registry.counter("mpisim.p2p.bytes", obs::Unit::kBytes).add(p2p_bytes);
  registry.counter("mpisim.p2p.dropped").add(p2p_dropped);
  registry.counter("mpisim.wait.timeouts").add(wait_timeouts);
  registry.counter("mpisim.wait.retries").add(wait_retries);
  for (const auto& [site, volume] : per_site) {
    registry.counter("mpisim." + site + ".calls").add(volume.calls);
    for (std::size_t r = 0; r < volume.sent_bytes.size(); ++r) {
      const std::string rank = ".rank" + std::to_string(r);
      registry
          .counter("mpisim." + site + rank + ".sent_bytes", obs::Unit::kBytes)
          .add(volume.sent_bytes[r]);
      registry
          .counter("mpisim." + site + rank + ".recv_bytes", obs::Unit::kBytes)
          .add(volume.recv_bytes[r]);
    }
  }
}

namespace detail {

SharedState::SharedState(int size, CommConfig config, obs::ObsHooks obs)
    : size_(size),
      config_(config),
      obs_(obs),
      slots_(static_cast<std::size_t>(size)),
      in_round_(static_cast<std::size_t>(size), 0),
      inactive_(static_cast<std::size_t>(size), 0),
      failed_(static_cast<std::size_t>(size), 0),
      active_(size) {
  config_.validate();
}

template <typename Predicate>
bool SharedState::wait_with_policy(std::unique_lock<std::mutex>& lock,
                                   Predicate done) {
  if (config_.timeout.count() <= 0) {
    cv_.wait(lock, done);
    return true;
  }
  auto allowance = config_.timeout;
  for (int attempt = 0;; ++attempt) {
    if (cv_.wait_for(lock, allowance, done)) return true;
    {
      std::lock_guard stats_lock(stats_mutex_);
      ++stats_.wait_timeouts;
    }
    if (attempt >= config_.max_retries) return false;
    {
      std::lock_guard stats_lock(stats_mutex_);
      ++stats_.wait_retries;
    }
    allowance = std::chrono::milliseconds(static_cast<std::int64_t>(
        static_cast<double>(allowance.count()) * config_.backoff));
    if (allowance.count() < 1) allowance = std::chrono::milliseconds(1);
  }
}

void SharedState::try_publish_locked() {
  if (active_ <= 0 || arrived_ != active_) return;
  // Last arriver (or the failure that removed the last straggler) publishes
  // the snapshot and resets the exchange area for the next collective.
  // Earlier ranks may already be blocked in the next exchange; the
  // generation counter keeps the rounds separate.
  snapshot_ = std::make_shared<const std::vector<std::vector<std::byte>>>(
      std::move(slots_));
  slots_.assign(static_cast<std::size_t>(size_), {});
  std::fill(in_round_.begin(), in_round_.end(), 0);
  arrived_ = 0;
  ++generation_;
  {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.collective_calls;
  }
  cv_.notify_all();
}

SiteCommStats& SharedState::site_stats_locked(std::string_view site) {
  const auto it = stats_.per_site.find(site);
  SiteCommStats& volume = it != stats_.per_site.end()
                              ? it->second
                              : stats_.per_site[std::string(site)];
  if (volume.sent_bytes.empty()) {
    volume.sent_bytes.assign(static_cast<std::size_t>(size_), 0);
    volume.recv_bytes.assign(static_cast<std::size_t>(size_), 0);
  }
  return volume;
}

SharedState::Snapshot SharedState::exchange(int rank, std::string_view site,
                                            std::vector<std::byte> bytes) {
  // Declared before the lock so the span's finish (which writes the tracer's
  // thread-local buffer) runs after mutex_ is released. The span covers the
  // whole collective including the wait for stragglers — exactly the time a
  // real MPI rank would spend inside the call.
  std::optional<obs::Span> span;
  if (obs_.tracer != nullptr) span.emplace(obs_.tracer->span(site));

  std::unique_lock lock(mutex_);
  const std::uint64_t my_generation = generation_;
  const std::uint64_t sent = bytes.size();
  {
    std::lock_guard stats_lock(stats_mutex_);
    stats_.collective_bytes += sent;
  }
  slots_[static_cast<std::size_t>(rank)] = std::move(bytes);
  in_round_[static_cast<std::size_t>(rank)] = 1;
  ++arrived_;
  Snapshot result;
  if (arrived_ == active_) {
    try_publish_locked();
    result = snapshot_;
  } else if (!wait_with_policy(
                 lock, [&] { return generation_ != my_generation; })) {
    // This rank's deposit stays valid — if the stragglers eventually
    // arrive, the round completes with its data. The caller, however,
    // gives up; run_spmd_ft will mark it inactive.
    throw TimeoutError("exchange: collective timed out at rank " +
                       std::to_string(rank));
  } else {
    result = snapshot_;
  }
  // Per-site accounting happens after the round completes so the pre-wait
  // path stays as cheap as before the obs layer (timeout-sensitive tests
  // depend on the deposit-to-wait latency).
  {
    std::lock_guard stats_lock(stats_mutex_);
    SiteCommStats& volume = site_stats_locked(site);
    ++volume.calls;
    volume.sent_bytes[static_cast<std::size_t>(rank)] += sent;
    std::uint64_t received = 0;
    for (const auto& part : *result) received += part.size();
    volume.recv_bytes[static_cast<std::size_t>(rank)] += received;
  }
  return result;
}

void SharedState::mark_inactive(int rank, bool failed) {
  std::unique_lock lock(mutex_);
  const auto r = static_cast<std::size_t>(rank);
  if (inactive_[r] != 0) return;
  inactive_[r] = 1;
  if (failed) failed_[r] = 1;
  --active_;
  if (in_round_[r] != 0) {
    // The rank deposited this round and then died waiting (timeout). Its
    // payload remains in the slot; only its attendance is withdrawn so the
    // publish condition tracks live ranks.
    in_round_[r] = 0;
    --arrived_;
  }
  try_publish_locked();
  lock.unlock();
  // Wake receivers blocked on this rank's never-coming messages.
  cv_.notify_all();
}

std::vector<int> SharedState::failed_ranks() const {
  std::vector<int> ranks;
  // failed_ entries are written before any observer can care (the writer
  // marks itself); mutex_ still guards for the concurrent case.
  std::lock_guard lock(const_cast<std::mutex&>(mutex_));
  for (int r = 0; r < size_; ++r) {
    if (failed_[static_cast<std::size_t>(r)] != 0) ranks.push_back(r);
  }
  return ranks;
}

void SharedState::send(int from, int to, int tag,
                       std::vector<std::byte> bytes) {
  std::unique_lock lock(mutex_);
  if (inactive_[static_cast<std::size_t>(to)] != 0) {
    lock.unlock();
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.p2p_dropped;
    return;
  }
  {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.p2p_messages;
    stats_.p2p_bytes += bytes.size();
    SiteCommStats& volume = site_stats_locked("p2p");
    ++volume.calls;
    volume.sent_bytes[static_cast<std::size_t>(from)] += bytes.size();
  }
  mailboxes_[ChannelKey{from, to, tag}].push_back(std::move(bytes));
  cv_.notify_all();
}

std::vector<std::byte> SharedState::recv(int to, int from, int tag) {
  std::unique_lock lock(mutex_);
  const ChannelKey key{from, to, tag};
  const auto ready = [&] {
    const auto it = mailboxes_.find(key);
    if (it != mailboxes_.end() && !it->second.empty()) return true;
    return inactive_[static_cast<std::size_t>(from)] != 0;
  };
  if (!wait_with_policy(lock, ready)) {
    throw TimeoutError("recv: no message from rank " + std::to_string(from) +
                       " (tag " + std::to_string(tag) + ")");
  }
  auto& queue = mailboxes_[key];
  if (queue.empty()) {
    // Queued messages drain even from a dead sender; only an empty channel
    // from a dead peer is hopeless.
    throw PeerFailedError("recv: rank " + std::to_string(from) +
                          " left the program with no message queued");
  }
  std::vector<std::byte> bytes = std::move(queue.front());
  queue.pop_front();
  {
    std::lock_guard stats_lock(stats_mutex_);
    site_stats_locked("p2p").recv_bytes[static_cast<std::size_t>(to)] +=
        bytes.size();
  }
  return bytes;
}

CommStats SharedState::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

}  // namespace detail

namespace {

struct SpmdRun {
  CommStats stats;
  std::vector<RankFailure> comm_failures;       // tolerated failures
  std::vector<std::exception_ptr> hard_errors;  // rethrown by rank order
  std::uint64_t faults_injected = 0;
};

/// The shared launcher: one thread per rank, every exit (normal or not)
/// marks the rank inactive so no surviving collective can deadlock on it.
/// Comm-layer failures are recorded; anything else is kept for rethrow.
SpmdRun launch_spmd(int size, const std::function<void(Comm&)>& body,
                    const SpmdOptions& options) {
  if (size <= 0) {
    throw std::invalid_argument("run_spmd: size must be positive");
  }
  options.comm.validate();
  auto state = std::make_shared<detail::SharedState>(size, options.comm,
                                                     options.obs);

  SpmdRun run;
  run.hard_errors.resize(static_cast<std::size_t>(size));
  std::vector<RankFailure> failures(static_cast<std::size_t>(size));
  std::vector<char> failed(static_cast<std::size_t>(size), 0);
  std::vector<std::uint64_t> fired(static_cast<std::size_t>(size), 0);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size));
  for (int rank = 0; rank < size; ++rank) {
    threads.emplace_back([rank, state, &body, &options, &failures, &failed,
                          &fired, &run] {
      if (options.obs.tracer != nullptr) {
        options.obs.tracer->set_thread_label("rank " +
                                             std::to_string(rank));
      }
      util::FaultInjector injector(options.fault_plan, rank);
      Comm comm(rank, state, injector.active() ? &injector : nullptr);
      const auto r = static_cast<std::size_t>(rank);
      try {
        body(comm);
        state->mark_inactive(rank, /*failed=*/false);
      } catch (const util::FaultAbort& abort) {
        failures[r] = {rank, abort.site(), abort.what()};
        failed[r] = 1;
        state->mark_inactive(rank, /*failed=*/true);
      } catch (const CommError& error) {
        failures[r] = {rank, "comm", error.what()};
        failed[r] = 1;
        state->mark_inactive(rank, /*failed=*/true);
      } catch (...) {
        run.hard_errors[r] = std::current_exception();
        failed[r] = 1;
        state->mark_inactive(rank, /*failed=*/true);
      }
      fired[r] = injector.faults_injected();
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int rank = 0; rank < size; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    run.faults_injected += fired[r];
    if (failed[r] != 0 && run.hard_errors[r] == nullptr) {
      run.comm_failures.push_back(std::move(failures[r]));
    }
  }
  run.stats = state->stats();
  if (options.obs.metrics != nullptr) {
    run.stats.publish(*options.obs.metrics);
    options.obs.metrics->counter("mpisim.faults_injected")
        .add(run.faults_injected);
    options.obs.metrics->counter("mpisim.rank_failures")
        .add(run.comm_failures.size());
  }
  return run;
}

}  // namespace

CommStats run_spmd(int size, const std::function<void(Comm&)>& body) {
  SpmdRun run = launch_spmd(size, body, {});
  for (const std::exception_ptr& error : run.hard_errors) {
    if (error) std::rethrow_exception(error);
  }
  // Without a fault plan or timeouts no comm failure can arise; if a caller
  // hand-rolls one anyway (e.g. recv from an exited rank), surface it.
  if (!run.comm_failures.empty()) {
    throw CommError("rank " + std::to_string(run.comm_failures.front().rank) +
                    " failed: " + run.comm_failures.front().message);
  }
  return run.stats;
}

SpmdReport run_spmd_ft(int size, const std::function<void(Comm&)>& body,
                       const SpmdOptions& options) {
  SpmdRun run = launch_spmd(size, body, options);
  for (const std::exception_ptr& error : run.hard_errors) {
    if (error) std::rethrow_exception(error);
  }
  SpmdReport report;
  report.stats = run.stats;
  report.failures = std::move(run.comm_failures);
  report.faults_injected = run.faults_injected;
  return report;
}

}  // namespace jem::mpisim
