#include "mpisim/network_model.hpp"

#include <bit>
#include <cmath>

namespace jem::mpisim {

namespace {
int ceil_log2(int p) {
  if (p <= 1) return 0;
  return std::bit_width(static_cast<unsigned>(p - 1));
}
}  // namespace

double NetworkModel::allgatherv_s(int p, std::uint64_t total_bytes) const {
  if (p <= 1) return 0.0;
  const double steps = static_cast<double>(p - 1);
  const double moved =
      static_cast<double>(total_bytes) * steps / static_cast<double>(p);
  return latency_s * steps + sec_per_byte * moved;
}

double NetworkModel::barrier_s(int p) const {
  return latency_s * static_cast<double>(ceil_log2(p));
}

double NetworkModel::reduce_s(int p, std::uint64_t bytes) const {
  if (p <= 1) return 0.0;
  const double rounds = static_cast<double>(ceil_log2(p));
  return rounds * (latency_s + sec_per_byte * static_cast<double>(bytes));
}

double NetworkModel::p2p_s(std::uint64_t bytes) const {
  return latency_s + sec_per_byte * static_cast<double>(bytes);
}

}  // namespace jem::mpisim
