// mpisim: an in-process SPMD message-passing runtime.
//
// The paper's JEM-mapper is a distributed-memory MPI program (steps S1-S4,
// one MPI_Allgatherv collective). This container has no MPI implementation
// installed, so mpisim provides the message-passing programming model the
// LLNL MPI tutorial describes — ranks with private state, explicit
// cooperative communication — executed as one thread per rank inside a
// single process. Each rank's "address space" is its own stack/locals;
// all data movement goes through the Comm object, mirroring how the real
// implementation would use MPI_Allgatherv / MPI_Reduce / point-to-point.
//
// Semantics notes:
//  * Collectives are blocking and must be called by every rank of the
//    communicator in the same order (as in MPI).
//  * Payloads are trivially-copyable element types (the same restriction the
//    MPI datatype system effectively imposes for contiguous buffers).
//  * Point-to-point send/recv match on (source, tag) with FIFO order per
//    (source, dest, tag) channel; send is buffered (never blocks on the
//    receiver), recv blocks.
//
// Robustness layer (docs/robustness.md):
//  * A rank that leaves the program — normal return, exception, or injected
//    FaultAbort — is marked inactive; pending and future collectives
//    complete over the remaining ranks instead of deadlocking, and its slot
//    in the exchange contributes nothing.
//  * CommConfig adds opt-in timeouts with bounded retry + exponential
//    backoff to every blocking wait; exhaustion throws TimeoutError (or
//    PeerFailedError when the awaited peer is known dead).
//  * A util::FaultInjector attached to a Comm turns every collective and
//    p2p call into a fault site keyed by (rank, site, invocation): delays
//    stall the call, drops void its payload, aborts throw FaultAbort.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/obs.hpp"
#include "util/fault_plan.hpp"

namespace jem::mpisim {

class Comm;

/// Per-collective-site communication volume, resolved per rank. A "site" is
/// the collective's name as passed to guard_payload ("allgatherv", "bcast",
/// ...; point-to-point traffic is accounted under "p2p"). sent_bytes[r] is
/// what rank r deposited; recv_bytes[r] is what rank r read back out of the
/// published snapshot. This is the S3-imbalance view the paper's Table II
/// needs: with skewed partitions the allgatherv rows differ per rank.
struct SiteCommStats {
  std::uint64_t calls = 0;                 // deposits: one per rank per op
  std::vector<std::uint64_t> sent_bytes;   // indexed by rank
  std::vector<std::uint64_t> recv_bytes;   // indexed by rank
};

/// Statistics about communication volume, gathered per run so the drivers
/// can charge modeled network time to the measured byte counts.
struct CommStats {
  std::uint64_t collective_calls = 0;
  std::uint64_t collective_bytes = 0;  // total payload across all ranks
  std::uint64_t p2p_messages = 0;
  std::uint64_t p2p_bytes = 0;
  std::uint64_t p2p_dropped = 0;   // sends voided by faults or dead peers
  std::uint64_t wait_timeouts = 0;  // individual waits that expired
  std::uint64_t wait_retries = 0;   // expired waits that were retried

  /// Byte volume broken down by collective site and rank
  /// (docs/observability.md). Aggregate fields above are unchanged.
  std::map<std::string, SiteCommStats, std::less<>> per_site;

  /// Adds this run's totals to `registry` under `mpisim.*` names: aggregate
  /// counters plus per-site `mpisim.<site>.rank<r>.{sent,recv}_bytes`.
  void publish(obs::Registry& registry) const;
};

/// Blocking-wait policy for collectives and recv. The default (timeout 0)
/// waits forever — exactly the pre-robustness semantics. With a timeout set,
/// each wait is retried up to `max_retries` times, the allowance growing by
/// `backoff` per attempt, before TimeoutError is thrown.
struct CommConfig {
  std::chrono::milliseconds timeout{0};  // 0 = wait forever
  int max_retries = 3;
  double backoff = 2.0;

  void validate() const {
    if (timeout.count() < 0) {
      throw std::invalid_argument("CommConfig: timeout must be >= 0");
    }
    if (max_retries < 0) {
      throw std::invalid_argument("CommConfig: max_retries must be >= 0");
    }
    if (backoff < 1.0) {
      throw std::invalid_argument("CommConfig: backoff must be >= 1");
    }
  }
};

/// Base class of the runtime's communication failures.
class CommError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A blocking wait exhausted its timeout budget (stalled peer or wedged
/// collective). The operation did not complete.
class TimeoutError : public CommError {
 public:
  using CommError::CommError;
};

/// The awaited peer is known to have left the program (aborted or returned)
/// and can never satisfy the wait.
class PeerFailedError : public CommError {
 public:
  using CommError::CommError;
};

namespace detail {

/// State shared by all ranks of one run: the collective exchange area and
/// the point-to-point mailboxes.
class SharedState {
 public:
  explicit SharedState(int size, CommConfig config = {},
                       obs::ObsHooks obs = {});

  /// All-to-all deposit/exchange: every active rank deposits `bytes`; once
  /// the last active rank arrives, a snapshot of all deposits becomes
  /// visible to every rank (inactive ranks' slots stay empty). This single
  /// primitive implements barrier (empty payload), allgatherv, gather,
  /// bcast and reduce. `site` names the collective for per-site byte
  /// accounting and tracer spans ("allgatherv", "bcast", ...).
  using Snapshot = std::shared_ptr<const std::vector<std::vector<std::byte>>>;
  [[nodiscard]] Snapshot exchange(int rank, std::string_view site,
                                  std::vector<std::byte> bytes);

  void send(int from, int to, int tag, std::vector<std::byte> bytes);
  [[nodiscard]] std::vector<std::byte> recv(int to, int from, int tag);

  /// Removes `rank` from every current and future collective, waking any
  /// peer whose wait it was blocking. `failed` records the rank in
  /// failed_ranks() (aborts) vs. a silent retirement (normal return).
  void mark_inactive(int rank, bool failed);

  [[nodiscard]] std::vector<int> failed_ranks() const;

  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] const CommConfig& config() const noexcept { return config_; }
  [[nodiscard]] CommStats stats() const;

 private:
  struct ChannelKey {
    int from;
    int to;
    int tag;
    auto operator<=>(const ChannelKey&) const = default;
  };

  /// Waits on cv_ until `done` holds, honoring config_'s timeout/retry
  /// policy. Returns false when the budget is exhausted (never when
  /// timeout == 0, which waits forever).
  template <typename Predicate>
  bool wait_with_policy(std::unique_lock<std::mutex>& lock, Predicate done);

  /// Publishes the current round if every active rank has arrived.
  /// Caller holds mutex_.
  void try_publish_locked();

  /// Per-site accounting helpers; caller holds stats_mutex_.
  SiteCommStats& site_stats_locked(std::string_view site);

  const int size_;
  const CommConfig config_;
  const obs::ObsHooks obs_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::vector<std::byte>> slots_;
  std::vector<char> in_round_;   // rank deposited in the current round
  std::vector<char> inactive_;   // rank left the program
  std::vector<char> failed_;     // subset of inactive_: abnormal exits
  int active_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  Snapshot snapshot_;

  std::map<ChannelKey, std::deque<std::vector<std::byte>>> mailboxes_;

  mutable std::mutex stats_mutex_;
  CommStats stats_;
};

template <typename T>
std::vector<std::byte> to_bytes(std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>,
                "mpisim payloads must be trivially copyable");
  std::vector<std::byte> bytes(data.size_bytes());
  if (!data.empty()) {
    std::memcpy(bytes.data(), data.data(), data.size_bytes());
  }
  return bytes;
}

template <typename T>
std::vector<T> from_bytes(std::span<const std::byte> bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (bytes.size() % sizeof(T) != 0) {
    throw std::logic_error("mpisim: payload size not a multiple of element");
  }
  std::vector<T> data(bytes.size() / sizeof(T));
  if (!bytes.empty()) {
    std::memcpy(data.data(), bytes.data(), bytes.size());
  }
  return data;
}

}  // namespace detail

/// Per-rank handle to the communicator (analogous to MPI_COMM_WORLD plus the
/// caller's rank). Cheap to copy within the rank's thread; not shared across
/// ranks.
class Comm {
 public:
  Comm(int rank, std::shared_ptr<detail::SharedState> state,
       util::FaultInjector* injector = nullptr)
      : rank_(rank), state_(std::move(state)), injector_(injector) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return state_->size(); }

  /// Ranks that aborted (threw) so far. Survivor-side degradation
  /// accounting: a failed rank's collective contributions are empty from
  /// the round it died in onward.
  [[nodiscard]] std::vector<int> failed_ranks() const {
    return state_->failed_ranks();
  }

  /// Named fault site for driver code (e.g. "S4:map" between collectives):
  /// applies the attached injector's next decision for `site` — sleeps on
  /// delay, throws util::FaultAbort on abort; drop is a no-op here. Without
  /// an injector this is free.
  void fault_point(std::string_view site) {
    if (injector_ != nullptr) (void)injector_->fire(site);
  }

  /// MPI_Barrier.
  void barrier() {
    (void)guard_payload("barrier", {});
    (void)state_->exchange(rank_, "barrier", {});
  }

  /// MPI_Allgatherv: concatenation of every rank's vector, in rank order,
  /// visible at every rank. Ranks that died (or whose payload a fault
  /// dropped) contribute nothing.
  template <typename T>
  [[nodiscard]] std::vector<T> allgatherv(std::span<const T> local) {
    const auto snapshot = state_->exchange(
        rank_, "allgatherv",
        guard_payload("allgatherv", detail::to_bytes<T>(local)));
    std::vector<T> out;
    std::size_t total = 0;
    for (const auto& part : *snapshot) total += part.size() / sizeof(T);
    out.reserve(total);
    for (const auto& part : *snapshot) {
      const auto decoded = detail::from_bytes<T>(part);
      out.insert(out.end(), decoded.begin(), decoded.end());
    }
    return out;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> allgatherv(const std::vector<T>& local) {
    return allgatherv(std::span<const T>(local));
  }

  /// MPI_Gatherv to `root`: root receives per-rank vectors; others get {}.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> gatherv(std::span<const T> local,
                                                    int root) {
    const auto snapshot = state_->exchange(
        rank_, "gatherv",
        guard_payload("gatherv", detail::to_bytes<T>(local)));
    std::vector<std::vector<T>> out;
    if (rank_ == root) {
      out.reserve(snapshot->size());
      for (const auto& part : *snapshot) {
        out.push_back(detail::from_bytes<T>(part));
      }
    }
    return out;
  }

  /// MPI_Bcast from `root`. If the root died before this round (or its
  /// payload was dropped), every rank receives an empty vector.
  template <typename T>
  [[nodiscard]] std::vector<T> bcast(std::span<const T> local, int root) {
    std::vector<std::byte> payload;
    if (rank_ == root) payload = detail::to_bytes<T>(local);
    const auto snapshot = state_->exchange(
        rank_, "bcast", guard_payload("bcast", std::move(payload)));
    return detail::from_bytes<T>((*snapshot)[static_cast<std::size_t>(root)]);
  }

  /// MPI_Allreduce with a binary combiner over single values. Empty slots
  /// (dead ranks, dropped payloads) are skipped; throws CommError if no
  /// rank contributed.
  template <typename T, typename Op>
  [[nodiscard]] T all_reduce(const T& local, Op op) {
    const auto snapshot = state_->exchange(
        rank_, "all_reduce",
        guard_payload("all_reduce", detail::to_bytes<T>(
                                        std::span<const T>(&local, 1))));
    bool seeded = false;
    T acc{};
    for (const auto& part : *snapshot) {
      if (part.empty()) continue;
      const T value = detail::from_bytes<T>(part)[0];
      acc = seeded ? op(acc, value) : value;
      seeded = true;
    }
    if (!seeded) throw CommError("all_reduce: no surviving contributions");
    return acc;
  }

  /// Element-wise all-reduce over equal-length vectors. Empty slots are
  /// skipped; throws CommError if no rank contributed.
  template <typename T, typename Op>
  [[nodiscard]] std::vector<T> all_reduce_vec(std::span<const T> local,
                                              Op op) {
    const auto snapshot = state_->exchange(
        rank_, "all_reduce_vec",
        guard_payload("all_reduce_vec", detail::to_bytes<T>(local)));
    std::vector<T> acc;
    bool seeded = false;
    for (const auto& part : *snapshot) {
      if (part.empty()) continue;
      const auto values = detail::from_bytes<T>(part);
      if (!seeded) {
        acc = values;
        seeded = true;
        continue;
      }
      if (values.size() != acc.size()) {
        throw std::logic_error("all_reduce_vec: mismatched lengths");
      }
      for (std::size_t i = 0; i < acc.size(); ++i) {
        acc[i] = op(acc[i], values[i]);
      }
    }
    if (!seeded) {
      throw CommError("all_reduce_vec: no surviving contributions");
    }
    return acc;
  }

  /// MPI_Alltoallv: `per_dest[d]` is this rank's payload for rank d; the
  /// result's element [s] is the payload rank s sent to this rank. A dead
  /// rank's (or dropped) slot yields empty payloads from that source.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> all_to_allv(
      const std::vector<std::vector<T>>& per_dest) {
    if (per_dest.size() != static_cast<std::size_t>(size())) {
      throw std::logic_error("all_to_allv: need one payload per rank");
    }
    // Serialize as [u64 count per dest]*size + concatenated payloads.
    std::vector<std::byte> blob;
    std::size_t total = 0;
    for (const auto& payload : per_dest) total += payload.size();
    blob.reserve(per_dest.size() * sizeof(std::uint64_t) +
                 total * sizeof(T));
    for (const auto& payload : per_dest) {
      const std::uint64_t count = payload.size();
      const auto* bytes = reinterpret_cast<const std::byte*>(&count);
      blob.insert(blob.end(), bytes, bytes + sizeof(count));
    }
    for (const auto& payload : per_dest) {
      const auto encoded = detail::to_bytes<T>(std::span<const T>(payload));
      blob.insert(blob.end(), encoded.begin(), encoded.end());
    }

    const auto snapshot = state_->exchange(
        rank_, "all_to_allv", guard_payload("all_to_allv", std::move(blob)));
    std::vector<std::vector<T>> received(static_cast<std::size_t>(size()));
    for (int src = 0; src < size(); ++src) {
      const auto& src_blob = (*snapshot)[static_cast<std::size_t>(src)];
      if (src_blob.empty()) continue;  // dead or dropped source
      // Walk the header to find this rank's slice.
      const std::size_t header =
          static_cast<std::size_t>(size()) * sizeof(std::uint64_t);
      if (src_blob.size() < header) {
        throw std::logic_error("all_to_allv: malformed payload");
      }
      std::size_t offset = header;
      std::uint64_t my_count = 0;
      for (int d = 0; d < size(); ++d) {
        std::uint64_t count = 0;
        std::memcpy(&count, src_blob.data() + d * sizeof(std::uint64_t),
                    sizeof(count));
        if (d == rank_) {
          my_count = count;
          break;
        }
        offset += static_cast<std::size_t>(count) * sizeof(T);
      }
      received[static_cast<std::size_t>(src)] = detail::from_bytes<T>(
          std::span<const std::byte>(src_blob)
              .subspan(offset, static_cast<std::size_t>(my_count) *
                                   sizeof(T)));
    }
    return received;
  }

  /// Buffered MPI_Send. A drop fault voids the message (counted in stats).
  template <typename T>
  void send(std::span<const T> data, int dest, int tag = 0) {
    state_->send(rank_, dest, tag,
                 guard_payload("send", detail::to_bytes<T>(data)));
  }

  /// Blocking MPI_Recv; returns the payload. Throws PeerFailedError when
  /// the source died with nothing queued, TimeoutError on wait exhaustion.
  template <typename T>
  [[nodiscard]] std::vector<T> recv(int source, int tag = 0) {
    fault_point("recv");
    return detail::from_bytes<T>(state_->recv(rank_, source, tag));
  }

  [[nodiscard]] CommStats stats() const { return state_->stats(); }

 private:
  /// Applies the injector at a payload-carrying site: delay sleeps, abort
  /// throws, drop replaces the payload with an empty one (the rank still
  /// participates in the collective, so the protocol stays aligned — only
  /// its data is lost, as with a dropped network message).
  std::vector<std::byte> guard_payload(std::string_view site,
                                       std::vector<std::byte> payload) {
    if (injector_ != nullptr && !injector_->fire(site)) payload.clear();
    return payload;
  }

  int rank_;
  std::shared_ptr<detail::SharedState> state_;
  util::FaultInjector* injector_;
};

/// Launches `size` ranks, each running `body(comm)` on its own thread, and
/// joins them (analogous to mpirun -np size). Exceptions thrown by any rank
/// are rethrown (the first one, by rank order) after all ranks finish; a
/// throwing rank is marked inactive so surviving ranks' collectives
/// complete (degraded) instead of deadlocking.
/// Returns the aggregate communication statistics of the run.
CommStats run_spmd(int size, const std::function<void(Comm&)>& body);

/// One abnormal rank exit in a fault-tolerant run.
struct RankFailure {
  int rank = -1;
  std::string site;     // fault site or collective that detected the death
  std::string message;  // exception text
};

struct SpmdOptions {
  CommConfig comm;
  /// Not owned; may be null (no injected faults). Each rank gets its own
  /// util::FaultInjector over this plan.
  const util::FaultPlan* fault_plan = nullptr;
  /// Optional observability sinks (not owned; docs/observability.md). With
  /// a tracer attached each rank thread labels its track "rank N" and every
  /// collective records a span; with a metrics registry attached the run's
  /// CommStats and fault counters are published at join time.
  obs::ObsHooks obs;
};

struct SpmdReport {
  CommStats stats;
  std::vector<RankFailure> failures;  // ordered by rank
  std::uint64_t faults_injected = 0;  // decisions that fired, all ranks

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
  [[nodiscard]] std::vector<int> failed_ranks() const {
    std::vector<int> ranks;
    ranks.reserve(failures.size());
    for (const RankFailure& failure : failures) ranks.push_back(failure.rank);
    return ranks;
  }
};

/// Fault-tolerant SPMD execution: ranks that die of injected faults or
/// communication errors (util::FaultAbort, TimeoutError, PeerFailedError)
/// are recorded in the report instead of rethrown, and the remaining ranks
/// run to completion. Any other exception still propagates (after every
/// rank has finished, so nothing leaks or deadlocks).
SpmdReport run_spmd_ft(int size, const std::function<void(Comm&)>& body,
                       const SpmdOptions& options = {});

}  // namespace jem::mpisim
