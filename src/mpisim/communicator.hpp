// mpisim: an in-process SPMD message-passing runtime.
//
// The paper's JEM-mapper is a distributed-memory MPI program (steps S1-S4,
// one MPI_Allgatherv collective). This container has no MPI implementation
// installed, so mpisim provides the message-passing programming model the
// LLNL MPI tutorial describes — ranks with private state, explicit
// cooperative communication — executed as one thread per rank inside a
// single process. Each rank's "address space" is its own stack/locals;
// all data movement goes through the Comm object, mirroring how the real
// implementation would use MPI_Allgatherv / MPI_Reduce / point-to-point.
//
// Semantics notes:
//  * Collectives are blocking and must be called by every rank of the
//    communicator in the same order (as in MPI).
//  * Payloads are trivially-copyable element types (the same restriction the
//    MPI datatype system effectively imposes for contiguous buffers).
//  * Point-to-point send/recv match on (source, tag) with FIFO order per
//    (source, dest, tag) channel; send is buffered (never blocks on the
//    receiver), recv blocks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace jem::mpisim {

class Comm;

/// Statistics about communication volume, gathered per run so the drivers
/// can charge modeled network time to the measured byte counts.
struct CommStats {
  std::uint64_t collective_calls = 0;
  std::uint64_t collective_bytes = 0;  // total payload across all ranks
  std::uint64_t p2p_messages = 0;
  std::uint64_t p2p_bytes = 0;
};

namespace detail {

/// State shared by all ranks of one run: the collective exchange area and
/// the point-to-point mailboxes.
class SharedState {
 public:
  explicit SharedState(int size) : size_(size), slots_(size) {}

  /// All-to-all deposit/exchange: every rank deposits `bytes`; once the last
  /// rank arrives, a snapshot of all deposits becomes visible to every rank.
  /// This single primitive implements barrier (empty payload), allgatherv,
  /// gather, bcast and reduce.
  using Snapshot = std::shared_ptr<const std::vector<std::vector<std::byte>>>;
  [[nodiscard]] Snapshot exchange(int rank, std::vector<std::byte> bytes);

  void send(int from, int to, int tag, std::vector<std::byte> bytes);
  [[nodiscard]] std::vector<std::byte> recv(int to, int from, int tag);

  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] CommStats stats() const;

 private:
  struct ChannelKey {
    int from;
    int to;
    int tag;
    auto operator<=>(const ChannelKey&) const = default;
  };

  const int size_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::vector<std::byte>> slots_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  Snapshot snapshot_;

  std::map<ChannelKey, std::deque<std::vector<std::byte>>> mailboxes_;

  mutable std::mutex stats_mutex_;
  CommStats stats_;
};

template <typename T>
std::vector<std::byte> to_bytes(std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>,
                "mpisim payloads must be trivially copyable");
  std::vector<std::byte> bytes(data.size_bytes());
  if (!data.empty()) {
    std::memcpy(bytes.data(), data.data(), data.size_bytes());
  }
  return bytes;
}

template <typename T>
std::vector<T> from_bytes(std::span<const std::byte> bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (bytes.size() % sizeof(T) != 0) {
    throw std::logic_error("mpisim: payload size not a multiple of element");
  }
  std::vector<T> data(bytes.size() / sizeof(T));
  if (!bytes.empty()) {
    std::memcpy(data.data(), bytes.data(), bytes.size());
  }
  return data;
}

}  // namespace detail

/// Per-rank handle to the communicator (analogous to MPI_COMM_WORLD plus the
/// caller's rank). Cheap to copy within the rank's thread; not shared across
/// ranks.
class Comm {
 public:
  Comm(int rank, std::shared_ptr<detail::SharedState> state)
      : rank_(rank), state_(std::move(state)) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return state_->size(); }

  /// MPI_Barrier.
  void barrier() { (void)state_->exchange(rank_, {}); }

  /// MPI_Allgatherv: concatenation of every rank's vector, in rank order,
  /// visible at every rank.
  template <typename T>
  [[nodiscard]] std::vector<T> allgatherv(std::span<const T> local) {
    const auto snapshot =
        state_->exchange(rank_, detail::to_bytes<T>(local));
    std::vector<T> out;
    std::size_t total = 0;
    for (const auto& part : *snapshot) total += part.size() / sizeof(T);
    out.reserve(total);
    for (const auto& part : *snapshot) {
      const auto decoded = detail::from_bytes<T>(part);
      out.insert(out.end(), decoded.begin(), decoded.end());
    }
    return out;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> allgatherv(const std::vector<T>& local) {
    return allgatherv(std::span<const T>(local));
  }

  /// MPI_Gatherv to `root`: root receives per-rank vectors; others get {}.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> gatherv(std::span<const T> local,
                                                    int root) {
    const auto snapshot = state_->exchange(rank_, detail::to_bytes<T>(local));
    std::vector<std::vector<T>> out;
    if (rank_ == root) {
      out.reserve(snapshot->size());
      for (const auto& part : *snapshot) {
        out.push_back(detail::from_bytes<T>(part));
      }
    }
    return out;
  }

  /// MPI_Bcast from `root`.
  template <typename T>
  [[nodiscard]] std::vector<T> bcast(std::span<const T> local, int root) {
    std::vector<std::byte> payload;
    if (rank_ == root) payload = detail::to_bytes<T>(local);
    const auto snapshot = state_->exchange(rank_, std::move(payload));
    return detail::from_bytes<T>((*snapshot)[static_cast<std::size_t>(root)]);
  }

  /// MPI_Allreduce with a binary combiner over single values.
  template <typename T, typename Op>
  [[nodiscard]] T all_reduce(const T& local, Op op) {
    const auto snapshot = state_->exchange(
        rank_, detail::to_bytes<T>(std::span<const T>(&local, 1)));
    T acc = detail::from_bytes<T>((*snapshot)[0])[0];
    for (int r = 1; r < size(); ++r) {
      acc = op(acc, detail::from_bytes<T>(
                        (*snapshot)[static_cast<std::size_t>(r)])[0]);
    }
    return acc;
  }

  /// Element-wise all-reduce over equal-length vectors.
  template <typename T, typename Op>
  [[nodiscard]] std::vector<T> all_reduce_vec(std::span<const T> local,
                                              Op op) {
    const auto snapshot = state_->exchange(rank_, detail::to_bytes<T>(local));
    std::vector<T> acc = detail::from_bytes<T>((*snapshot)[0]);
    for (int r = 1; r < size(); ++r) {
      const auto part =
          detail::from_bytes<T>((*snapshot)[static_cast<std::size_t>(r)]);
      if (part.size() != acc.size()) {
        throw std::logic_error("all_reduce_vec: mismatched lengths");
      }
      for (std::size_t i = 0; i < acc.size(); ++i) {
        acc[i] = op(acc[i], part[i]);
      }
    }
    return acc;
  }

  /// MPI_Alltoallv: `per_dest[d]` is this rank's payload for rank d; the
  /// result's element [s] is the payload rank s sent to this rank.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> all_to_allv(
      const std::vector<std::vector<T>>& per_dest) {
    if (per_dest.size() != static_cast<std::size_t>(size())) {
      throw std::logic_error("all_to_allv: need one payload per rank");
    }
    // Serialize as [u64 count per dest]*size + concatenated payloads.
    std::vector<std::byte> blob;
    std::size_t total = 0;
    for (const auto& payload : per_dest) total += payload.size();
    blob.reserve(per_dest.size() * sizeof(std::uint64_t) +
                 total * sizeof(T));
    for (const auto& payload : per_dest) {
      const std::uint64_t count = payload.size();
      const auto* bytes = reinterpret_cast<const std::byte*>(&count);
      blob.insert(blob.end(), bytes, bytes + sizeof(count));
    }
    for (const auto& payload : per_dest) {
      const auto encoded = detail::to_bytes<T>(std::span<const T>(payload));
      blob.insert(blob.end(), encoded.begin(), encoded.end());
    }

    const auto snapshot = state_->exchange(rank_, std::move(blob));
    std::vector<std::vector<T>> received(static_cast<std::size_t>(size()));
    for (int src = 0; src < size(); ++src) {
      const auto& src_blob = (*snapshot)[static_cast<std::size_t>(src)];
      // Walk the header to find this rank's slice.
      const std::size_t header =
          static_cast<std::size_t>(size()) * sizeof(std::uint64_t);
      if (src_blob.size() < header) {
        throw std::logic_error("all_to_allv: malformed payload");
      }
      std::size_t offset = header;
      std::uint64_t my_count = 0;
      for (int d = 0; d < size(); ++d) {
        std::uint64_t count = 0;
        std::memcpy(&count, src_blob.data() + d * sizeof(std::uint64_t),
                    sizeof(count));
        if (d == rank_) {
          my_count = count;
          break;
        }
        offset += static_cast<std::size_t>(count) * sizeof(T);
      }
      received[static_cast<std::size_t>(src)] = detail::from_bytes<T>(
          std::span<const std::byte>(src_blob)
              .subspan(offset, static_cast<std::size_t>(my_count) *
                                   sizeof(T)));
    }
    return received;
  }

  /// Buffered MPI_Send.
  template <typename T>
  void send(std::span<const T> data, int dest, int tag = 0) {
    state_->send(rank_, dest, tag, detail::to_bytes<T>(data));
  }

  /// Blocking MPI_Recv; returns the payload.
  template <typename T>
  [[nodiscard]] std::vector<T> recv(int source, int tag = 0) {
    return detail::from_bytes<T>(state_->recv(rank_, source, tag));
  }

  [[nodiscard]] CommStats stats() const { return state_->stats(); }

 private:
  int rank_;
  std::shared_ptr<detail::SharedState> state_;
};

/// Launches `size` ranks, each running `body(comm)` on its own thread, and
/// joins them (analogous to mpirun -np size). Exceptions thrown by any rank
/// are rethrown (the first one, by rank order) after all ranks finish or die.
/// Returns the aggregate communication statistics of the run.
CommStats run_spmd(int size, const std::function<void(Comm&)>& body);

}  // namespace jem::mpisim
