// `jem probe` — client-side smoke/ops check for a running `jem serve`:
// fires concurrent /map requests (sequences read from a FASTA/FASTQ file or
// the demo reads), then fetches /healthz and /metrics, optionally writing
// both bodies to files for schema validation (examples/obs_check).
//
//   jem probe --port 8765 [--host 127.0.0.1]
//             [--queries reads.fq | --demo] [--requests 16] [--clients 4]
//             [--top-x 1] [--deadline-ms 0] [--retries 3]
//             [--admin-reload idx.jemidx]
//             [--healthz-out h.json] [--metrics-out m.json]
//             [--openmetrics-out m.prom] [--requests-out flight.json]
//             [--watch N]
//
// --watch N polls /healthz every second for N ticks after the load phase
// and prints one line per tick with the windowed SLO section — a live view
// of the 10s/1m/5m percentiles decaying after the load.
//
// The transport is the resilient serve::Client (exponential backoff + full
// jitter, Retry-After, circuit breaker), so a server that sheds 503s or is
// running a chaos fault plan still probes clean — --retries 0 restores
// one-shot semantics. --admin-reload posts a hot-swap to /admin/reload once
// half the /map requests are in flight, making the probe double as the
// zero-downtime reload check.
//
// Exit 0 when every request succeeded (HTTP 200 and, for /map, a JSON
// body); 1 otherwise — which makes it the assertion step of the check.sh
// serve smokes.
#include <atomic>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "cli/cli.hpp"
#include "io/sequence_set.hpp"
#include "io/stream_reader.hpp"
#include "serve/client.hpp"
#include "util/log.hpp"
#include "util/options.hpp"

namespace jem::cli {

int run_probe(std::span<const char* const> args, std::string_view program) {
  std::string host = "127.0.0.1";
  std::string queries_path;
  std::string healthz_out;
  std::string metrics_out;
  std::string openmetrics_out;
  std::string requests_out;
  std::string admin_reload;
  std::uint64_t watch = 0;
  std::uint64_t port = 8765;
  std::uint64_t requests = 16;
  std::uint64_t clients = 4;
  std::uint64_t top_x = 1;
  std::uint64_t deadline_ms = 0;
  std::uint64_t seed = 20230517;
  std::uint64_t retries = 3;
  bool demo = false;

  util::Options options;
  options.add_string("host", host, "server host (default 127.0.0.1)");
  options.add_uint("port", port, "server port");
  options.add_string("queries", queries_path,
                     "FASTA/FASTQ whose reads become /map bodies");
  options.add_flag("demo", demo, "probe with simulated demo reads");
  options.add_uint("requests", requests,
                   "total /map requests to send (default 16)");
  options.add_uint("clients", clients,
                   "concurrent client threads (default 4)");
  options.add_uint("top-x", top_x, "top_x to request (default 1)");
  options.add_uint("deadline-ms", deadline_ms,
                   "per-request deadline_ms, 0 = none");
  options.add_uint("seed", seed, "demo dataset seed");
  options.add_uint("retries", retries,
                   "retry attempts per request beyond the first (default 3)");
  options.add_string("admin-reload", admin_reload,
                     "POST /admin/reload?path=<this> once half the /map "
                     "requests are done (hot-swap smoke)");
  options.add_string("healthz-out", healthz_out,
                     "write the /healthz body to this file");
  options.add_string("metrics-out", metrics_out,
                     "write the /metrics body to this file");
  options.add_string("openmetrics-out", openmetrics_out,
                     "write the /metrics OpenMetrics text exposition "
                     "(?format=openmetrics) to this file");
  options.add_string("requests-out", requests_out,
                     "write the /debug/requests body to this file");
  options.add_uint("watch", watch,
                   "after the load, poll /healthz once a second for N ticks "
                   "and print the windowed SLO line (0 = off)");
  try {
    (void)options.parse(args);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage(program);
    return kExitUsage;
  }
  if (port == 0 || port > 65535) {
    std::cerr << "error: --port must be in [1, 65535]\n";
    return kExitUsage;
  }

  // Collect probe sequences. /map maps each body as one query segment, so
  // reads are used as-is.
  std::vector<std::string> sequences;
  try {
    io::SequenceSet reads;
    if (demo) {
      io::SequenceSet unused_subjects;
      make_demo_dataset(seed, unused_subjects, reads);
    } else if (!queries_path.empty()) {
      io::load_into(queries_path, reads);
    }
    for (io::SeqId id = 0; id < reads.size() && sequences.size() < requests;
         ++id) {
      sequences.emplace_back(reads.bases(id));
    }
  } catch (const std::exception& error) {
    std::cerr << "input error: " << error.what() << '\n';
    return kExitRuntime;
  }

  const std::uint16_t port16 = static_cast<std::uint16_t>(port);

  // One resilient client shared by the whole pool (thread-safe): retries
  // with backoff + jitter, honors Retry-After on sheds, trips the breaker
  // if the server goes truly dark.
  serve::RetryPolicy policy;
  policy.max_attempts = static_cast<int>(retries) + 1;
  policy.jitter_seed = seed;
  serve::CircuitBreaker::Config breaker;
  breaker.failure_threshold = 8;
  breaker.cooldown = std::chrono::milliseconds(200);
  serve::Client client(host, port16, policy, breaker);

  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<bool> reload_ok{true};

  if (!sequences.empty()) {
    std::string target = "/map?top_x=" + std::to_string(top_x);
    if (deadline_ms > 0) {
      target += "&deadline_ms=" + std::to_string(deadline_ms);
    }
    const std::uint64_t total = requests;
    const std::uint64_t reload_after = std::max<std::uint64_t>(1, total / 2);
    std::atomic<bool> reload_fired{admin_reload.empty()};
    std::vector<std::thread> pool;
    const std::uint64_t nthreads = std::max<std::uint64_t>(1, clients);
    pool.reserve(nthreads);
    for (std::uint64_t t = 0; t < nthreads; ++t) {
      pool.emplace_back([&] {
        while (true) {
          const std::uint64_t i = next.fetch_add(1);
          if (i >= total) return;
          // Hot-swap mid-load: exactly one thread posts the reload once
          // half the requests have been claimed — traffic keeps flowing
          // through the swap, which is the zero-downtime assertion.
          if (i >= reload_after && !reload_fired.exchange(true)) {
            try {
              const serve::HttpResponse response = client.post(
                  "/admin/reload?path=" + admin_reload, "");
              if (response.status != 200) {
                reload_ok.store(false);
                util::log_warn() << "admin reload: HTTP " << response.status
                                 << " " << response.body;
              }
            } catch (const serve::ClientError& error) {
              reload_ok.store(false);
              util::log_warn() << "admin reload: " << error.what();
            }
          }
          const std::string& sequence = sequences[i % sequences.size()];
          try {
            const serve::HttpResponse response =
                client.post(target, sequence);
            if (response.status == 200 && !response.body.empty() &&
                response.body.front() == '{') {
              ok.fetch_add(1);
            } else {
              failed.fetch_add(1);
              util::log_info() << "map request " << i << ": HTTP "
                               << response.status << " " << response.body;
            }
          } catch (const serve::ClientError& error) {
            failed.fetch_add(1);
            util::log_info() << "map request " << i << ": " << error.what();
          }
        }
      });
    }
    for (std::thread& thread : pool) thread.join();
  }

  bool endpoints_ok = true;
  const auto fetch = [&](std::string_view endpoint, const std::string& out) {
    try {
      const serve::HttpResponse response = client.get(endpoint);
      if (response.status != 200) {
        std::cerr << "error: " << endpoint << " returned HTTP "
                  << response.status << '\n';
        endpoints_ok = false;
        return;
      }
      if (!out.empty()) {
        std::ofstream file(out);
        file << response.body;
        if (!file) {
          std::cerr << "error: cannot write " << out << '\n';
          endpoints_ok = false;
        }
      }
    } catch (const serve::ClientError& error) {
      std::cerr << "error: " << endpoint << ": " << error.what() << '\n';
      endpoints_ok = false;
    }
  };
  fetch("/healthz", healthz_out);
  fetch("/metrics", metrics_out);
  if (!openmetrics_out.empty()) {
    fetch("/metrics?format=openmetrics", openmetrics_out);
  }
  if (!requests_out.empty()) fetch("/debug/requests", requests_out);

  // Live SLO view: one /healthz poll per second, printing the windowed
  // section so a human can watch a spike decay out of the 10s window.
  for (std::uint64_t tick = 0; tick < watch; ++tick) {
    if (tick > 0) std::this_thread::sleep_for(std::chrono::seconds(1));
    try {
      const serve::HttpResponse response = client.get("/healthz");
      std::string slo = response.body;
      const std::size_t at = slo.find("\"slo\":");
      if (at != std::string::npos) slo = slo.substr(at + 6);
      if (!slo.empty() && slo.back() == '}') slo.pop_back();
      std::cout << "watch " << tick + 1 << "/" << watch << ": " << slo
                << std::endl;
    } catch (const serve::ClientError& error) {
      std::cout << "watch " << tick + 1 << "/" << watch << ": " << error.what()
                << std::endl;
      endpoints_ok = false;
      break;
    }
  }

  std::cout << "probe: " << ok.load() << " mapped, " << failed.load()
            << " failed, " << client.retries() << " retried, endpoints "
            << (endpoints_ok ? "ok" : "FAILED") << '\n';
  return (failed.load() == 0 && endpoints_ok && reload_ok.load()) ? kExitOk
                                                                  : kExitRuntime;
}

}  // namespace jem::cli
