// `jem build-index` — sketch a subject FASTA once and write the frozen
// JEMIDX1 artifact (core/index_serde), so `jem map --load-index` and
// `jem serve --load-index` skip the sketch+freeze phase at startup.
//
//   jem build-index --subjects contigs.fa --output contigs.jemidx
//                   [--k 16] [--w 100] [--trials 30] [--segment 1000]
//                   [--seed N] [--ordering lex|hash] [--scheme jem|minhash]
//   jem build-index --demo --output demo.jemidx   (simulated subjects)
#include <iostream>

#include "cli/cli.hpp"
#include "core/index_serde.hpp"
#include "core/service.hpp"
#include "core/sketch_table.hpp"
#include "io/artifact.hpp"
#include "io/sequence_set.hpp"
#include "io/stream_reader.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

namespace jem::cli {

int run_build_index(std::span<const char* const> args,
                    std::string_view program) {
  std::string subjects_path;
  std::string output_path;
  std::string scheme_name = "jem";
  std::string ordering_name = "lex";
  std::uint64_t k = 16;
  std::uint64_t w = 100;
  std::uint64_t trials = 30;
  std::uint64_t segment = 1000;
  std::uint64_t seed = 20230517;
  bool demo = false;

  util::Options options;
  options.add_string("subjects", subjects_path, "contigs FASTA path");
  options.add_string("output", output_path, "index artifact output path");
  options.add_string("scheme", scheme_name, "sketch scheme: jem | minhash");
  options.add_string("ordering", ordering_name,
                     "minimizer ordering: lex | hash");
  options.add_uint("k", k, "k-mer size (default 16)");
  options.add_uint("w", w, "minimizer window in k-mers (default 100)");
  options.add_uint("trials", trials, "number of MinHash trials T (default 30)");
  options.add_uint("segment", segment, "end-segment length l (default 1000)");
  options.add_uint("seed", seed, "experiment seed");
  options.add_flag("demo", demo, "simulate subjects instead of reading files");
  try {
    (void)options.parse(args);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage(program);
    return kExitUsage;
  }
  if (output_path.empty()) {
    std::cerr << "error: --output is required\n" << options.usage(program);
    return kExitUsage;
  }

  core::ServiceConfig config;
  try {
    config = core::ServiceConfig::make()
                 .k(k)
                 .window(w)
                 .trials(trials)
                 .segment_length(segment)
                 .seed(seed)
                 .ordering(ordering_name)
                 .scheme(scheme_name)
                 .build();
  } catch (const core::ServiceError& error) {
    std::cerr << "error: " << error.what() << '\n';
    return kExitUsage;
  }

  io::SequenceSet subjects;
  try {
    if (demo) {
      io::SequenceSet unused_reads;
      make_demo_dataset(seed, subjects, unused_reads);
    } else {
      if (subjects_path.empty()) {
        std::cerr << "error: --subjects is required (or use --demo)\n"
                  << options.usage(program);
        return kExitUsage;
      }
      io::load_into(subjects_path, subjects);
    }
  } catch (const std::exception& error) {
    std::cerr << "input error: " << error.what() << '\n';
    return kExitRuntime;
  }

  util::WallTimer timer;
  try {
    // Building the service sketches + freezes the table; save_index writes
    // the checksummed artifact bound to these params and subjects.
    const core::MappingService service(std::move(subjects), config);
    core::save_index(output_path, service.engine().mapper().table(),
                     config.params, config.scheme, service.subjects());
    util::log_info() << "indexed " << service.subjects().size()
                     << " subjects in " << timer.elapsed_s() << " s";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return kExitRuntime;
  }
  std::cout << "wrote index to " << output_path << '\n';
  return kExitOk;
}

}  // namespace jem::cli
