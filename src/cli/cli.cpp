#include "cli/cli.hpp"

#include <iostream>
#include <sstream>

#include "sim/contigs.hpp"
#include "sim/genome.hpp"
#include "sim/hifi_reads.hpp"

namespace jem::cli {

namespace {

constexpr Command kCommands[] = {
    {"map", "map long reads to contigs and write a mapping TSV", run_map},
    {"build-index", "sketch subjects and write the frozen index artifact",
     run_build_index},
    {"serve", "always-on mapping service over local HTTP", run_serve},
    {"probe", "exercise a running `jem serve` (health, metrics, mapping)",
     run_probe},
    {"loadgen", "drive a running `jem serve` with Zipf-skewed load",
     run_loadgen},
};

}  // namespace

std::span<const Command> commands() noexcept { return kCommands; }

std::string main_usage() {
  std::ostringstream out;
  out << "usage: jem <command> [options]\n\ncommands:\n";
  for (const Command& command : kCommands) {
    out << "  " << command.name;
    for (std::size_t pad = command.name.size(); pad < 14; ++pad) out << ' ';
    out << command.summary << '\n';
  }
  out << "\nRun `jem <command> --help` for the command's options.\n";
  return out.str();
}

int dispatch(int argc, const char* const* argv) {
  if (argc < 2) {
    std::cerr << main_usage();
    return kExitUsage;
  }
  const std::string_view name = argv[1];
  if (name == "help" || name == "--help" || name == "-h") {
    std::cout << main_usage();
    return kExitOk;
  }
  const std::span<const char* const> rest(argv + 2,
                                          static_cast<std::size_t>(argc - 2));
  for (const Command& command : kCommands) {
    if (name == command.name) {
      return command.run(rest, std::string("jem ") + std::string(name));
    }
  }
  std::cerr << "error: unknown command '" << name << "'\n" << main_usage();
  return kExitUsage;
}

void make_demo_dataset(std::uint64_t seed, io::SequenceSet& subjects,
                       io::SequenceSet& reads) {
  sim::GenomeParams genome_params;
  genome_params.length = 400'000;
  genome_params.seed = seed;
  const std::string genome = sim::simulate_genome(genome_params);
  sim::ContigSimParams contig_params;
  contig_params.seed = seed + 1;
  const auto contigs = sim::simulate_contigs(genome, contig_params);
  sim::HiFiParams read_params;
  read_params.coverage = 4.0;
  read_params.seed = seed + 2;
  const auto simulated = sim::simulate_hifi_reads(genome, read_params);
  for (io::SeqId id = 0; id < contigs.contigs.size(); ++id) {
    subjects.add(contigs.contigs.name(id), contigs.contigs.bases(id));
  }
  for (io::SeqId id = 0; id < simulated.reads.size(); ++id) {
    reads.add(simulated.reads.name(id), simulated.reads.bases(id));
  }
}

}  // namespace jem::cli
