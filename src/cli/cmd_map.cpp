// `jem map` — the batch mapping workflow (and the whole body of the legacy
// `jem_map` binary, which now shims onto run_map): maps long reads
// (FASTA/FASTQ) to contigs (FASTA) and writes a tab-separated mapping.
// Runs sequentially, threaded, or on the simulated distributed runtime.
//
//   jem map --subjects contigs.fa --queries reads.fq --output out.tsv
//           [--k 16] [--w 100] [--trials 30] [--segment 1000]
//           [--ranks 4 | --threads 8] [--scheme jem|minhash]
//           [--save-index idx | --load-index idx]
//           [--batch N --checkpoint run.ckpt [--resume]]
//           [--metrics out.json] [--trace out.trace.json] [--progress]
//
// With --demo (no input files) it simulates a small dataset, maps it, and
// writes the mapping. Parameter assembly goes through the
// core::ServiceConfig builder (core/service.hpp), so an invalid value —
// including an unknown --ordering or --scheme name — is a structured
// diagnostic naming the field, and exits with the uniform usage code 2.
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <iterator>
#include <optional>
#include <sstream>
#include <thread>

#include "cli/cli.hpp"
#include "core/jem.hpp"
#include "core/service.hpp"
#include "io/gzip.hpp"
#include "io/stream_reader.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace jem::cli {

int run_map(std::span<const char* const> args, std::string_view program) {
  std::string subjects_path;
  std::string queries_path;
  std::string output_path = "mappings.tsv";
  std::string scheme_name = "jem";
  std::uint64_t k = 16;
  std::uint64_t w = 100;
  std::uint64_t trials = 30;
  std::uint64_t segment = 1000;
  std::uint64_t seed = 20230517;
  std::uint64_t ranks = 0;
  std::uint64_t threads = 0;
  bool demo = false;
  bool tiled = false;
  std::uint64_t batch = 0;
  std::string save_index_path;
  std::string load_index_path;
  std::string checkpoint_path;
  bool resume = false;
  std::string metrics_path;
  std::string trace_path;
  bool progress = false;

  util::Options options;
  options.add_string("subjects", subjects_path, "contigs FASTA path");
  options.add_string("queries", queries_path, "long-read FASTA/FASTQ path");
  options.add_string("output", output_path, "output mapping TSV path");
  options.add_string("scheme", scheme_name, "sketch scheme: jem | minhash");
  std::string ordering_name = "lex";
  options.add_string("ordering", ordering_name,
                     "minimizer ordering: lex | hash");
  options.add_uint("k", k, "k-mer size (default 16)");
  options.add_uint("w", w, "minimizer window in k-mers (default 100)");
  options.add_uint("trials", trials, "number of MinHash trials T (default 30)");
  options.add_uint("segment", segment, "end-segment length l (default 1000)");
  options.add_uint("seed", seed, "experiment seed");
  options.add_uint("ranks", ranks, "run distributed on this many ranks");
  bool partitioned = false;
  options.add_flag("partitioned", partitioned,
                   "with --ranks: shard the sketch table by k-mer instead "
                   "of replicating it (less memory, more communication)");
  options.add_uint("threads", threads, "run threaded with this many threads");
  options.add_flag("demo", demo, "simulate inputs instead of reading files");
  options.add_flag("tiled", tiled,
                   "containment mode: tile whole reads with l-length "
                   "segments (finds contigs inside read interiors)");
  options.add_uint("batch", batch,
                   "stream queries in batches of N reads (constant memory; "
                   "combine with --threads for the pipelined pool)");
  options.add_string("save-index", save_index_path,
                     "write the subject sketch index (checksummed artifact) "
                     "to this file");
  options.add_string("load-index", load_index_path,
                     "reuse an index written by --save-index (any defect is "
                     "reported and the index rebuilt from FASTA)");
  options.add_string("checkpoint", checkpoint_path,
                     "with --batch: journal batch progress to this file so "
                     "an interrupted run can --resume");
  options.add_flag("resume", resume,
                   "continue a checkpointed run from its journal (falls "
                   "back to a fresh run when the journal is unusable)");
  options.add_string("metrics", metrics_path,
                     "write a metrics-registry JSON snapshot here "
                     "(docs/observability.md)");
  options.add_string("trace", trace_path,
                     "write a Chrome trace_event JSON here (load in "
                     "Perfetto / chrome://tracing)");
  options.add_flag("progress", progress,
                   "print a live progress line (segments/s, ETA, queue "
                   "depth) to stderr");
  try {
    (void)options.parse(args);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage(program);
    return kExitUsage;
  }

  io::SequenceSet subjects;
  io::SequenceSet reads;
  try {
    if (demo) {
      make_demo_dataset(seed, subjects, reads);
    } else {
      if (subjects_path.empty() || queries_path.empty()) {
        std::cerr << "error: --subjects and --queries are required "
                     "(or use --demo)\n"
                  << options.usage(program);
        return kExitUsage;
      }
      io::load_into(subjects_path, subjects);
      if (batch == 0) io::load_into(queries_path, reads);
    }
  } catch (const std::exception& error) {
    std::cerr << "input error: " << error.what() << '\n';
    return kExitRuntime;
  }

  // One validated assembly for params + scheme (core/service.hpp): an
  // out-of-range value or unknown --ordering/--scheme name is a structured
  // ServiceError naming the field, and a usage error (exit 2) everywhere.
  core::ServiceConfig service_config;
  try {
    service_config = core::ServiceConfig::make()
                         .k(k)
                         .window(w)
                         .trials(trials)
                         .segment_length(segment)
                         .seed(seed)
                         .ordering(ordering_name)
                         .scheme(scheme_name)
                         .build();
  } catch (const core::ServiceError& error) {
    std::cerr << "error: " << error.what() << '\n';
    return kExitUsage;
  }
  const core::MapParams& params = service_config.params;
  const core::SketchScheme scheme = service_config.scheme;

  util::log_info() << "subjects=" << subjects.size()
                   << " queries=" << reads.size() << " k=" << k << " w=" << w
                   << " T=" << trials << " l=" << segment;

  // Observability sinks: one registry + tracer for the whole invocation.
  // IO-layer counters (io.*) land in the default registry, so it doubles as
  // the run's registry whenever any obs output is requested.
  const bool want_metrics = !metrics_path.empty() || progress;
  obs::Registry& registry = obs::default_registry();
  std::optional<obs::Tracer> tracer;
  if (!trace_path.empty()) tracer.emplace(1 << 16, "jem_map");
  obs::ObsHooks obs;
  if (want_metrics) obs.metrics = &registry;
  if (tracer) obs.tracer = &*tracer;

  // Live progress: a sampler thread reads the registry (engine.batch.reads
  // histogram accumulates as batches finish; the queue gauge tracks
  // backpressure) and repaints one stderr line.
  std::atomic<bool> progress_stop{false};
  std::thread progress_thread;
  if (progress) {
    const std::uint64_t total_reads = reads.size();  // 0 when streaming
    progress_thread = std::thread([&registry, &progress_stop, total_reads] {
      util::WallTimer progress_timer;
      while (!progress_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        const obs::MetricsSnapshot snap = registry.snapshot();
        const obs::MetricValue* batches = snap.find("engine.batch.reads");
        const obs::MetricValue* depth = snap.find("engine.queue.depth");
        const std::uint64_t done = batches != nullptr ? batches->sum : 0;
        const double elapsed = progress_timer.elapsed_s();
        const double rate = elapsed > 0.0
                                ? static_cast<double>(done) / elapsed
                                : 0.0;
        std::ostringstream line;
        line << "progress: " << done << " reads, "
             << static_cast<std::uint64_t>(rate) << " reads/s";
        if (total_reads > 0 && rate > 0.0 && done < total_reads) {
          line << ", ETA "
               << static_cast<std::uint64_t>(
                      static_cast<double>(total_reads - done) / rate)
               << " s";
        }
        if (depth != nullptr) line << ", queue depth " << depth->level;
        std::cerr << '\r' << line.str() << std::flush;
      }
      std::cerr << '\n';
    });
  }
  const auto stop_progress = [&] {
    if (progress_thread.joinable()) {
      progress_stop.store(true);
      progress_thread.join();
    }
  };
  // Joins the sampler on every exit path (early error returns included).
  struct ProgressGuard {
    const decltype(stop_progress)& stop;
    ~ProgressGuard() { stop(); }
  } progress_guard{stop_progress};

  // Writes the requested metrics/trace files; called on every successful
  // exit path.
  const auto write_obs_outputs = [&] {
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      out << registry.snapshot().to_json() << '\n';
      if (out) {
        util::log_info() << "wrote metrics snapshot to " << metrics_path;
      } else {
        std::cerr << "warning: cannot write " << metrics_path << '\n';
      }
    }
    if (tracer) {
      std::ofstream out(trace_path);
      out << tracer->snapshot().to_chrome_json() << '\n';
      if (out) {
        util::log_info() << "wrote Chrome trace to " << trace_path
                         << " (open in Perfetto or chrome://tracing)";
      } else {
        std::cerr << "warning: cannot write " << trace_path << '\n';
      }
    }
  };

  util::WallTimer timer;
  std::vector<io::MappingLine> lines;
  bool published = false;  // checkpointed runs write their output themselves
  if (ranks > 0) {
    const core::DistributedResult result =
        partitioned
            ? core::run_distributed_partitioned(subjects, reads, params,
                                                static_cast<int>(ranks),
                                                scheme, {}, obs)
            : core::run_distributed(subjects, reads, params,
                                    static_cast<int>(ranks), scheme,
                                    /*threads_per_rank=*/1, {}, {}, obs);
    const core::JemMapper name_resolver(subjects, params, scheme,
                                        core::SketchTable(params.trials));
    lines = name_resolver.to_mapping_lines(reads, result.mappings);
    util::log_info() << "distributed (" << ranks << " ranks): total "
                     << result.report.total_s() << " s, allgather "
                     << result.report.allgather_s << " s";
    for (const core::RankStageTimes& rank : result.report.per_rank) {
      util::log_info() << "  rank " << rank.rank << ": sketch "
                       << rank.sketch_s << " s, allgather "
                       << rank.allgather_s << " s, build " << rank.build_s
                       << " s, map " << rank.map_s << " s";
    }
  } else {
    std::optional<core::MappingEngine> engine;
    bool loaded_index = false;
    if (!load_index_path.empty()) {
      try {
        engine.emplace(subjects, params, scheme,
                       core::load_index(load_index_path, params, scheme,
                                        subjects));
        loaded_index = true;
        util::log_info() << "loaded sketch index from " << load_index_path
                         << " (freeze skipped)";
      } catch (const io::ArtifactError& error) {
        // A bad artifact is never fatal: report why and rebuild from FASTA.
        util::log_info() << "index " << load_index_path << " rejected ("
                         << error.what() << "); rebuilding from FASTA";
      }
    }
    if (!engine) engine.emplace(subjects, params, scheme);
    if (!save_index_path.empty() && !loaded_index) {
      try {
        core::save_index(save_index_path, engine->mapper().table(), params,
                         scheme, subjects);
        util::log_info() << "saved sketch index to " << save_index_path;
      } catch (const io::ArtifactError& error) {
        std::cerr << "error: cannot save index: " << error.what() << '\n';
        return kExitRuntime;
      }
    }

    core::MapRequest request;
    request.mode = tiled ? core::MapMode::kTiled : core::MapMode::kEnds;
    request.backend =
        threads > 1 ? core::MapBackend::kPool : core::MapBackend::kSerial;
    request.threads = threads;
    request.batch_size = batch;
    request.obs = obs;

    core::EngineStats stats;
    try {
      if (batch > 0 && !demo && !checkpoint_path.empty()) {
        // Checkpointed streaming: each in-order batch is appended to
        // <output>.partial and journaled; a killed run resumes past the
        // journal and the final output (published atomically) is byte-
        // identical to an uninterrupted run (docs/persistence.md).
        const std::string query_data = io::read_file_auto(queries_path);
        std::istringstream stream(query_data);
        io::BatchStream batches(stream, batch);
        const core::JemMapper& mapper = engine->mapper();

        // The fingerprint binds the journal to this exact run: mapping
        // parameters + scheme, subject set, query bytes, and the request
        // shape that determines batch boundaries and output layout.
        io::JournalFingerprint fp;
        fp.words[0] = core::params_digest(params, scheme);
        fp.words[1] = core::subjects_digest(subjects);
        fp.words[2] = io::xxh64(query_data);
        fp.words[3] = io::xxh64(std::string(tiled ? "tiled" : "ends") +
                                ";batch=" + std::to_string(batch));

        std::optional<io::MappingOutput> output;
        std::optional<io::CheckpointWriter> journal;
        if (resume) {
          try {
            const io::ResumePoint point =
                io::read_journal(checkpoint_path, fp);
            output.emplace(output_path, point.output_bytes,
                           point.output_hash);
            journal.emplace(
                io::CheckpointWriter::reopen(checkpoint_path, fp, point));
            const std::uint64_t skipped = batches.skip(point.batches_done);
            util::log_info()
                << "resumed at batch " << point.batches_done << " ("
                << skipped << " reads already mapped"
                << (point.torn_records != 0 ? ", torn journal tail discarded"
                                            : "")
                << ")";
          } catch (const io::ArtifactError& error) {
            util::log_info() << "cannot resume (" << error.what()
                             << "); restarting from scratch";
            journal.reset();
            output.reset();
          }
        }
        if (!output) {
          output.emplace(output_path);
          journal.emplace(io::CheckpointWriter::create(checkpoint_path, fp));
        }
        journal->set_output_state([&] { return output->state(); });
        request.checkpoint = &*journal;

        stats = engine->run_stream(
            batches, request,
            [&](const core::MappingEngine::BatchResult& result) {
              std::ostringstream chunk;
              io::write_mappings(chunk, mapper.to_mapping_lines(
                                            result.batch.reads,
                                            result.mappings));
              output->append(std::move(chunk).str());
              // Sync before the journal append: a journal record must never
              // claim bytes the disk does not have.
              output->sync();
            });
        output->publish();
        journal->close();
        io::remove_journal(checkpoint_path);
        published = true;
        util::log_info() << "streamed " << stats.reads << " reads ("
                         << stats.batches_skipped << " batches resumed past, "
                         << stats.journal_appends << " journal records)";
      } else if (batch > 0 && !demo) {
        // Streaming mode: constant memory in the query set. The engine
        // reads batches on this thread and maps them on the pool behind a
        // bounded queue, emitting results in input order. Parsing happens
        // lazily here, so parse errors surface from run_stream.
        std::istringstream stream(io::read_file_auto(queries_path));
        io::BatchStream batches(stream, batch);
        const core::JemMapper& mapper = engine->mapper();
        stats = engine->run_stream(
            batches, request,
            [&](const core::MappingEngine::BatchResult& result) {
              auto chunk_lines =
                  mapper.to_mapping_lines(result.batch.reads, result.mappings);
              lines.insert(lines.end(),
                           std::make_move_iterator(chunk_lines.begin()),
                           std::make_move_iterator(chunk_lines.end()));
            });
        util::log_info() << "streamed " << stats.reads
                         << " reads in batches of " << batch;
      } else {
        core::MapReport report = engine->run(reads, request);
        lines = engine->mapper().to_mapping_lines(reads, report.mappings);
        stats = report.stats;
      }
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << '\n';
      return kExitRuntime;
    }
    util::log_info() << "engine: " << stats.batches << " batches, "
                     << stats.segments << " segments, "
                     << static_cast<std::uint64_t>(stats.segments_per_s())
                     << " segments/s (read " << stats.read_s << " s, map "
                     << stats.map_s << " s, emit " << stats.emit_s
                     << " s, queue-wait " << stats.queue_wait_s << " s)";
  }
  stop_progress();
  if (published) {
    util::log_info() << "checkpointed run finished in " << timer.elapsed_s()
                     << " s";
    write_obs_outputs();
    std::cout << "published " << output_path << '\n';
    return kExitOk;
  }

  util::log_info() << "mapped " << lines.size() << " end segments in "
                   << timer.elapsed_s() << " s";

  try {
    std::ostringstream serialized;
    io::write_mappings(serialized, lines);
    io::atomic_write_file(output_path, std::move(serialized).str());
  } catch (const io::ArtifactError& error) {
    std::cerr << "error: cannot write " << output_path << ": " << error.what()
              << '\n';
    return kExitRuntime;
  }
  write_obs_outputs();
  std::uint64_t mapped = 0;
  for (const auto& line : lines) {
    if (line.mapped()) ++mapped;
  }
  std::cout << "wrote " << lines.size() << " records (" << mapped
            << " mapped) to " << output_path << '\n';
  return kExitOk;
}

}  // namespace jem::cli
