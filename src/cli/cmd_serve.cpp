// `jem serve` — the always-on mapping service (docs/serve.md): load (or
// build) the subject index once, bind a loopback HTTP socket, and serve
// mapping requests until SIGTERM/SIGINT, then drain gracefully.
//
//   jem serve --subjects contigs.fa [--load-index idx] [--port 8765]
//             [--workers 4] [--max-batch 16] [--batch-window-us 200]
//             [--queue 64] [--work-queue 256] [--cache 1024]
//             [--deadline-ms 0] [--port-file run.port]
//             [--slow-ms 0] [--flight-recorder-size 256]
//             [--slo-frame-ms 1000] [--log-format human|json]
//             [--k 16] [--w 100] [--trials 30] [--segment 1000] [--seed N]
//             [--ordering lex|hash] [--scheme jem|minhash]
//   jem serve --demo --port 0 --port-file run.port   (simulated subjects)
//
// --port 0 binds an ephemeral port; --port-file publishes whichever port was
// bound (written atomically) so scripts can wait for it and connect.
//
// Hot swap: SIGHUP (or POST /admin/reload) reloads the --reload-index
// artifact and swaps the serving epoch with zero downtime; a corrupt or
// mismatched artifact is rejected and the old index keeps serving.
//
// SIGUSR1 dumps the flight recorder (recent per-request records, newest
// first) to stderr — the same data GET /debug/requests serves over HTTP.
//
// Chaos (docs/robustness.md): --chaos-seed plus --chaos-{delay,drop,abort}
// rates arm the serve.* fault sites with a seeded, reproducible plan;
// --chaos-abort-at site:invocation injects one deterministic thread abort
// (e.g. serve.batch:4 kills the batcher on its 4th micro-batch).
#include <atomic>
#include <charconv>
#include <csignal>
#include <fstream>
#include <iostream>
#include <string_view>
#include <thread>

#include "cli/cli.hpp"
#include "core/service.hpp"
#include "io/artifact.hpp"
#include "io/sequence_set.hpp"
#include "io/stream_reader.hpp"
#include "serve/server.hpp"
#include "util/fault_plan.hpp"
#include "util/log.hpp"
#include "util/options.hpp"

namespace jem::cli {

namespace {

// Signal flags: the handlers only store; the main thread polls and acts.
std::atomic<bool> g_stop_requested{false};
std::atomic<bool> g_reload_requested{false};
std::atomic<bool> g_dump_requested{false};

void handle_stop_signal(int) { g_stop_requested.store(true); }
void handle_reload_signal(int) { g_reload_requested.store(true); }
void handle_dump_signal(int) { g_dump_requested.store(true); }

/// Parses a comma-separated list of "site:invocation" abort events
/// ("serve.batch:4,serve.read:10") into `plan`. Returns false on garbage.
bool parse_abort_events(const std::string& text, util::FaultPlan& plan) {
  std::string_view rest = text;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view item = rest.substr(0, comma);
    const std::size_t colon = item.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 >= item.size()) {
      return false;
    }
    std::uint64_t invocation = 0;
    const std::string_view digits = item.substr(colon + 1);
    const auto [ptr, ec] = std::from_chars(
        digits.data(), digits.data() + digits.size(), invocation);
    if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
      return false;
    }
    plan.abort_at(util::FaultPlan::kAnyRank, std::string(item.substr(0, colon)),
                  invocation);
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  return true;
}

}  // namespace

int run_serve(std::span<const char* const> args, std::string_view program) {
  std::string subjects_path;
  std::string load_index_path;
  std::string port_file;
  std::string scheme_name = "jem";
  std::string ordering_name = "lex";
  std::uint64_t k = 16;
  std::uint64_t w = 100;
  std::uint64_t trials = 30;
  std::uint64_t segment = 1000;
  std::uint64_t seed = 20230517;
  std::uint64_t port = 8765;
  std::uint64_t workers = 4;
  std::uint64_t max_batch = 16;
  std::uint64_t batch_window_us = 200;
  std::uint64_t queue = 64;
  std::uint64_t work_queue = 256;
  std::uint64_t cache = 1024;
  std::uint64_t deadline_ms = 0;
  bool demo = false;
  std::string reload_index_path;
  std::uint64_t chaos_seed = 0;
  double chaos_delay = 0.0;
  double chaos_drop = 0.0;
  double chaos_abort = 0.0;
  std::uint64_t chaos_max_delay_ms = 5;
  std::string chaos_abort_at;
  std::uint64_t slow_ms = 0;
  std::uint64_t flight_recorder_size = 256;
  std::uint64_t slo_frame_ms = 1000;
  std::string log_format = "human";

  util::Options options;
  options.add_string("subjects", subjects_path, "contigs FASTA path");
  options.add_string("load-index", load_index_path,
                     "frozen index artifact (rejected artifacts are "
                     "reported and rebuilt from FASTA)");
  options.add_string("port-file", port_file,
                     "write the bound port here once listening");
  options.add_string("scheme", scheme_name, "sketch scheme: jem | minhash");
  options.add_string("ordering", ordering_name,
                     "minimizer ordering: lex | hash");
  options.add_uint("k", k, "k-mer size (default 16)");
  options.add_uint("w", w, "minimizer window in k-mers (default 100)");
  options.add_uint("trials", trials, "number of MinHash trials T (default 30)");
  options.add_uint("segment", segment, "end-segment length l (default 1000)");
  options.add_uint("seed", seed, "experiment seed");
  options.add_uint("port", port, "listen port (0 = ephemeral, default 8765)");
  options.add_uint("workers", workers, "connection worker threads (default 4)");
  options.add_uint("max-batch", max_batch,
                   "micro-batch size cap (default 16)");
  options.add_uint("batch-window-us", batch_window_us,
                   "micro-batch coalescing window in µs (default 200)");
  options.add_uint("queue", queue,
                   "admission queue capacity; overflow sheds 503 "
                   "(default 64)");
  options.add_uint("work-queue", work_queue,
                   "/map work queue capacity (default 256)");
  options.add_uint("cache", cache,
                   "LRU response cache entries, 0 disables (default 1024)");
  options.add_uint("deadline-ms", deadline_ms,
                   "default per-request deadline in ms, 0 = none");
  options.add_flag("demo", demo, "simulate subjects instead of reading files");
  options.add_string("reload-index", reload_index_path,
                     "artifact hot-swapped on SIGHUP / POST /admin/reload "
                     "(default: the --load-index path)");
  options.add_uint("chaos-seed", chaos_seed,
                   "seed for the random serve.* fault plan (0 = off)");
  options.add_double("chaos-delay", chaos_delay,
                     "per-site injected-latency probability [0,1]");
  options.add_double("chaos-drop", chaos_drop,
                     "per-site reset/truncate/drop probability [0,1]");
  options.add_double("chaos-abort", chaos_abort,
                     "per-site thread-abort probability [0,1]");
  options.add_uint("chaos-max-delay-ms", chaos_max_delay_ms,
                   "injected delays are in [1, this] ms (default 5)");
  options.add_string("chaos-abort-at", chaos_abort_at,
                     "deterministic aborts, 'site:invocation[,...]' "
                     "(e.g. serve.batch:4)");
  options.add_uint("slow-ms", slow_ms,
                   "warn-log a span breakdown for requests slower than this "
                   "(0 = off)");
  options.add_uint("flight-recorder-size", flight_recorder_size,
                   "per-request flight recorder capacity, 0 disables "
                   "(default 256); dump via GET /debug/requests or SIGUSR1");
  options.add_uint("slo-frame-ms", slo_frame_ms,
                   "windowed-SLO frame width in ms (default 1000)");
  options.add_string("log-format", log_format,
                     "log output format: human | json");
  try {
    (void)options.parse(args);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage(program);
    return kExitUsage;
  }
  if (port > 65535) {
    std::cerr << "error: --port must be in [0, 65535]\n";
    return kExitUsage;
  }
  if (chaos_delay < 0 || chaos_drop < 0 || chaos_abort < 0 ||
      chaos_delay + chaos_drop + chaos_abort > 1.0) {
    std::cerr << "error: --chaos-* rates must be >= 0 and sum to <= 1\n";
    return kExitUsage;
  }
  if (log_format == "json") {
    util::Log::set_format(util::LogFormat::kJson);
  } else if (log_format != "human") {
    std::cerr << "error: --log-format must be 'human' or 'json', got '"
              << log_format << "'\n";
    return kExitUsage;
  }
  if (slo_frame_ms == 0) {
    std::cerr << "error: --slo-frame-ms must be positive\n";
    return kExitUsage;
  }

  // The fault plan outlives the server (ServerConfig holds a pointer).
  util::FaultPlan fault_plan;
  bool chaos_enabled = false;
  if (chaos_seed != 0 &&
      (chaos_delay > 0 || chaos_drop > 0 || chaos_abort > 0)) {
    util::RandomFaultRates rates;
    rates.delay = chaos_delay;
    rates.drop = chaos_drop;
    rates.abort = chaos_abort;
    rates.max_delay = std::chrono::milliseconds(
        std::max<std::uint64_t>(1, chaos_max_delay_ms));
    fault_plan = util::FaultPlan::random(chaos_seed, rates);
    chaos_enabled = true;
  }
  if (!chaos_abort_at.empty()) {
    if (!parse_abort_events(chaos_abort_at, fault_plan)) {
      std::cerr << "error: --chaos-abort-at expects 'site:invocation[,...]', "
                   "got '"
                << chaos_abort_at << "'\n";
      return kExitUsage;
    }
    chaos_enabled = true;
  }

  core::ServiceConfig config;
  try {
    config = core::ServiceConfig::make()
                 .k(k)
                 .window(w)
                 .trials(trials)
                 .segment_length(segment)
                 .seed(seed)
                 .ordering(ordering_name)
                 .scheme(scheme_name)
                 .build();
  } catch (const core::ServiceError& error) {
    std::cerr << "error: " << error.what() << '\n';
    return kExitUsage;
  }

  io::SequenceSet subjects;
  try {
    if (demo) {
      io::SequenceSet unused_reads;
      make_demo_dataset(seed, subjects, unused_reads);
    } else {
      if (subjects_path.empty()) {
        std::cerr << "error: --subjects is required (or use --demo)\n"
                  << options.usage(program);
        return kExitUsage;
      }
      io::load_into(subjects_path, subjects);
    }
  } catch (const std::exception& error) {
    std::cerr << "input error: " << error.what() << '\n';
    return kExitRuntime;
  }

  try {
    // Load-once: the index is built (or loaded) here, before the socket
    // opens — every request after this point hits a warm, frozen table.
    core::MappingService service =
        load_index_path.empty()
            ? core::MappingService(std::move(subjects), config)
            : core::MappingService::from_index(load_index_path,
                                               std::move(subjects), config);
    if (!service.load_report().rejection.empty()) {
      util::log_info() << "index " << load_index_path << " rejected ("
                       << service.load_report().rejection
                       << "); rebuilt from subjects";
    } else if (service.load_report().loaded_from_artifact) {
      util::log_info() << "loaded sketch index from " << load_index_path;
    }

    serve::ServerConfig server_config;
    server_config.port = static_cast<std::uint16_t>(port);
    server_config.workers = workers;
    server_config.queue_capacity = queue;
    server_config.work_capacity = work_queue;
    server_config.max_batch = max_batch;
    server_config.batch_window = std::chrono::microseconds(batch_window_us);
    server_config.default_deadline = std::chrono::milliseconds(deadline_ms);
    server_config.cache_capacity = cache;
    server_config.slow_threshold = std::chrono::milliseconds(slow_ms);
    server_config.flight_recorder_size = flight_recorder_size;
    server_config.slo_frame = std::chrono::milliseconds(slo_frame_ms);
    if (chaos_enabled) server_config.fault_plan = &fault_plan;
    if (reload_index_path.empty()) reload_index_path = load_index_path;
    server_config.reload_index_path = reload_index_path;

    serve::MappingServer server(service, server_config);
    server.start();
    if (chaos_enabled) {
      util::log_info() << "chaos armed: seed " << chaos_seed << " delay "
                       << chaos_delay << " drop " << chaos_drop << " abort "
                       << chaos_abort
                       << (chaos_abort_at.empty()
                               ? std::string()
                               : " abort-at " + chaos_abort_at);
    }

    if (!port_file.empty()) {
      io::atomic_write_file(port_file,
                            std::to_string(server.port()) + "\n");
    }
    util::log_info() << "serving " << service.subjects().size()
                     << " subjects on 127.0.0.1:" << server.port() << " ("
                     << workers << " workers, max batch " << max_batch << ")";
    std::cout << "listening on 127.0.0.1:" << server.port() << std::endl;

    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    std::signal(SIGHUP, handle_reload_signal);
    std::signal(SIGUSR1, handle_dump_signal);
    while (!g_stop_requested.load()) {
      if (g_dump_requested.exchange(false)) {
        // SIGUSR1: dump the flight recorder to stderr (ops escape hatch
        // when the HTTP plane is wedged or unreachable).
        const std::string dump = server.flight_recorder_text();
        std::cerr << "--- flight recorder ("
                  << (dump.empty() ? "empty or disabled" : "newest first")
                  << ") ---\n"
                  << dump << "--- end flight recorder ---\n";
      }
      if (g_reload_requested.exchange(false)) {
        if (reload_index_path.empty()) {
          util::log_warn() << "SIGHUP reload requested but no --reload-index "
                              "(or --load-index) path is configured";
        } else {
          const auto outcome = server.reload_index(reload_index_path);
          if (!outcome.success) {
            util::log_warn() << "SIGHUP reload failed: " << outcome.error;
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    util::log_info() << "stop requested; draining";
    server.stop();  // graceful: admitted requests finish before exit
    util::log_info() << "drained; bye";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return kExitRuntime;
  }
  return kExitOk;
}

}  // namespace jem::cli
