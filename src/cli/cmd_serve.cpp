// `jem serve` — the always-on mapping service (docs/serve.md): load (or
// build) the subject index once, bind a loopback HTTP socket, and serve
// mapping requests until SIGTERM/SIGINT, then drain gracefully.
//
//   jem serve --subjects contigs.fa [--load-index idx] [--port 8765]
//             [--workers 4] [--max-batch 16] [--batch-window-us 200]
//             [--queue 64] [--work-queue 256] [--cache 1024]
//             [--deadline-ms 0] [--port-file run.port]
//             [--k 16] [--w 100] [--trials 30] [--segment 1000] [--seed N]
//             [--ordering lex|hash] [--scheme jem|minhash]
//   jem serve --demo --port 0 --port-file run.port   (simulated subjects)
//
// --port 0 binds an ephemeral port; --port-file publishes whichever port was
// bound (written atomically) so scripts can wait for it and connect.
#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <thread>

#include "cli/cli.hpp"
#include "core/service.hpp"
#include "io/artifact.hpp"
#include "io/sequence_set.hpp"
#include "io/stream_reader.hpp"
#include "serve/server.hpp"
#include "util/log.hpp"
#include "util/options.hpp"

namespace jem::cli {

namespace {

// Signal flag: the handler only stores; the main thread polls and drains.
std::atomic<bool> g_stop_requested{false};

void handle_stop_signal(int) { g_stop_requested.store(true); }

}  // namespace

int run_serve(std::span<const char* const> args, std::string_view program) {
  std::string subjects_path;
  std::string load_index_path;
  std::string port_file;
  std::string scheme_name = "jem";
  std::string ordering_name = "lex";
  std::uint64_t k = 16;
  std::uint64_t w = 100;
  std::uint64_t trials = 30;
  std::uint64_t segment = 1000;
  std::uint64_t seed = 20230517;
  std::uint64_t port = 8765;
  std::uint64_t workers = 4;
  std::uint64_t max_batch = 16;
  std::uint64_t batch_window_us = 200;
  std::uint64_t queue = 64;
  std::uint64_t work_queue = 256;
  std::uint64_t cache = 1024;
  std::uint64_t deadline_ms = 0;
  bool demo = false;

  util::Options options;
  options.add_string("subjects", subjects_path, "contigs FASTA path");
  options.add_string("load-index", load_index_path,
                     "frozen index artifact (rejected artifacts are "
                     "reported and rebuilt from FASTA)");
  options.add_string("port-file", port_file,
                     "write the bound port here once listening");
  options.add_string("scheme", scheme_name, "sketch scheme: jem | minhash");
  options.add_string("ordering", ordering_name,
                     "minimizer ordering: lex | hash");
  options.add_uint("k", k, "k-mer size (default 16)");
  options.add_uint("w", w, "minimizer window in k-mers (default 100)");
  options.add_uint("trials", trials, "number of MinHash trials T (default 30)");
  options.add_uint("segment", segment, "end-segment length l (default 1000)");
  options.add_uint("seed", seed, "experiment seed");
  options.add_uint("port", port, "listen port (0 = ephemeral, default 8765)");
  options.add_uint("workers", workers, "connection worker threads (default 4)");
  options.add_uint("max-batch", max_batch,
                   "micro-batch size cap (default 16)");
  options.add_uint("batch-window-us", batch_window_us,
                   "micro-batch coalescing window in µs (default 200)");
  options.add_uint("queue", queue,
                   "admission queue capacity; overflow sheds 503 "
                   "(default 64)");
  options.add_uint("work-queue", work_queue,
                   "/map work queue capacity (default 256)");
  options.add_uint("cache", cache,
                   "LRU response cache entries, 0 disables (default 1024)");
  options.add_uint("deadline-ms", deadline_ms,
                   "default per-request deadline in ms, 0 = none");
  options.add_flag("demo", demo, "simulate subjects instead of reading files");
  try {
    (void)options.parse(args);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage(program);
    return kExitUsage;
  }
  if (port > 65535) {
    std::cerr << "error: --port must be in [0, 65535]\n";
    return kExitUsage;
  }

  core::ServiceConfig config;
  try {
    config = core::ServiceConfig::make()
                 .k(k)
                 .window(w)
                 .trials(trials)
                 .segment_length(segment)
                 .seed(seed)
                 .ordering(ordering_name)
                 .scheme(scheme_name)
                 .build();
  } catch (const core::ServiceError& error) {
    std::cerr << "error: " << error.what() << '\n';
    return kExitUsage;
  }

  io::SequenceSet subjects;
  try {
    if (demo) {
      io::SequenceSet unused_reads;
      make_demo_dataset(seed, subjects, unused_reads);
    } else {
      if (subjects_path.empty()) {
        std::cerr << "error: --subjects is required (or use --demo)\n"
                  << options.usage(program);
        return kExitUsage;
      }
      io::load_into(subjects_path, subjects);
    }
  } catch (const std::exception& error) {
    std::cerr << "input error: " << error.what() << '\n';
    return kExitRuntime;
  }

  try {
    // Load-once: the index is built (or loaded) here, before the socket
    // opens — every request after this point hits a warm, frozen table.
    core::MappingService service =
        load_index_path.empty()
            ? core::MappingService(std::move(subjects), config)
            : core::MappingService::from_index(load_index_path,
                                               std::move(subjects), config);
    if (!service.load_report().rejection.empty()) {
      util::log_info() << "index " << load_index_path << " rejected ("
                       << service.load_report().rejection
                       << "); rebuilt from subjects";
    } else if (service.load_report().loaded_from_artifact) {
      util::log_info() << "loaded sketch index from " << load_index_path;
    }

    serve::ServerConfig server_config;
    server_config.port = static_cast<std::uint16_t>(port);
    server_config.workers = workers;
    server_config.queue_capacity = queue;
    server_config.work_capacity = work_queue;
    server_config.max_batch = max_batch;
    server_config.batch_window = std::chrono::microseconds(batch_window_us);
    server_config.default_deadline = std::chrono::milliseconds(deadline_ms);
    server_config.cache_capacity = cache;

    serve::MappingServer server(service, server_config);
    server.start();

    if (!port_file.empty()) {
      io::atomic_write_file(port_file,
                            std::to_string(server.port()) + "\n");
    }
    util::log_info() << "serving " << service.subjects().size()
                     << " subjects on 127.0.0.1:" << server.port() << " ("
                     << workers << " workers, max batch " << max_batch << ")";
    std::cout << "listening on 127.0.0.1:" << server.port() << std::endl;

    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    while (!g_stop_requested.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    util::log_info() << "stop requested; draining";
    server.stop();  // graceful: admitted requests finish before exit
    util::log_info() << "drained; bye";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return kExitRuntime;
  }
  return kExitOk;
}

}  // namespace jem::cli
