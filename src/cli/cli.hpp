// The `jem` subcommand CLI (vg-style): one front-end binary, a thin command
// registry, and one run_*() entry point per subcommand. Every entry point
// takes argv minus the program/subcommand tokens, so the legacy `jem_map`
// binary stays a two-line shim over run_map() — bit-identical behavior, one
// implementation.
//
//   jem map          map reads to contigs (the legacy jem_map workflow)
//   jem build-index  sketch subjects and write the frozen JEMIDX1 artifact
//   jem serve        always-on mapping service over local HTTP
//   jem probe        client for a running `jem serve` (smoke/ops checks)
//   jem loadgen      Zipf-skewed load generator (offered-load/latency curves)
//
// Exit codes are uniform across subcommands (docs/serve.md):
//   0  success
//   1  runtime failure (bad input file, engine error, server died)
//   2  usage error (unknown option/subcommand, invalid parameter value —
//      including unknown --ordering / --scheme names)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "io/sequence_set.hpp"

namespace jem::cli {

inline constexpr int kExitOk = 0;
inline constexpr int kExitRuntime = 1;
inline constexpr int kExitUsage = 2;

/// Subcommand entry points. `args` is argv after the subcommand token;
/// `program` is the name usage text reports ("jem map" or legacy "jem_map").
int run_map(std::span<const char* const> args, std::string_view program);
int run_build_index(std::span<const char* const> args,
                    std::string_view program);
int run_serve(std::span<const char* const> args, std::string_view program);
int run_probe(std::span<const char* const> args, std::string_view program);
int run_loadgen(std::span<const char* const> args, std::string_view program);

struct Command {
  std::string_view name;
  std::string_view summary;
  int (*run)(std::span<const char* const> args, std::string_view program);
};

/// The registered subcommands, dispatch order = listing order.
[[nodiscard]] std::span<const Command> commands() noexcept;

/// Top-level usage text (the `jem` / `jem --help` listing).
[[nodiscard]] std::string main_usage();

/// Full front-end dispatch: argv[1] picks the subcommand, the rest is
/// forwarded. `jem help`, `--help`, and no arguments print the listing.
int dispatch(int argc, const char* const* argv);

/// The demo dataset every subcommand's --demo uses: a simulated genome,
/// contigs assembled from it, and HiFi reads at 4x coverage. One recipe,
/// seeded from `seed`, so `jem map --demo`, `jem serve --demo`, and the
/// legacy jem_map --demo all see the same bytes.
void make_demo_dataset(std::uint64_t seed, io::SequenceSet& subjects,
                       io::SequenceSet& reads);

}  // namespace jem::cli
