// `jem loadgen` — Zipf-skewed load generator for a running `jem serve`
// (ROADMAP item 4c): offered-load vs latency/shed curves, the serving
// benchmark the paper's "heavy traffic from millions of users" motivation
// asks for.
//
//   jem loadgen --port 8765 [--host 127.0.0.1]
//               [--queries reads.fq | --demo] [--requests 200] [--clients 4]
//               [--mode closed|open] [--rate 500 | --sweep 100,200,400]
//               [--zipf-s 1.0] [--zipf-n 0] [--seed N] [--top-x 1]
//               [--out curve.json]
//
// Query popularity is Zipf(n, s) over the query set (rank 1 = hottest),
// the standard key-skew model for cache-fronted serving systems — a skewed
// stream exercises the LRU exactly the way production traffic would.
//
// Two driving modes:
//   closed  each client fires its next request the moment the previous one
//           completes — offered load self-clocks to server capacity.
//   open    requests are released on a fixed global schedule (i-th at
//           start + i/rate) regardless of completions — the mode that
//           exposes queueing collapse and shed behavior past saturation.
//
// The transport is the raw one-shot client on purpose: a 503 shed or a
// reset must count as exactly that, not be papered over by retries.
// Output is one JSON document ({"benchmark":"serve_load","points":[...]}),
// each point carrying offered/achieved rps, p50/p99/p999 ms and shed/error
// counts; scripts/bench_serve.sh merges it into BENCH_serve.json.
#include <algorithm>
#include <atomic>
#include <charconv>
#include <cmath>
#include <fstream>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "cli/cli.hpp"
#include "io/sequence_set.hpp"
#include "io/stream_reader.hpp"
#include "serve/client.hpp"
#include "util/options.hpp"
#include "util/prng.hpp"
#include "util/zipf.hpp"

namespace jem::cli {

namespace {

struct LoadPoint {
  double offered_rps = 0.0;  // 0 = closed loop (self-clocked)
  double achieved_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double shed_rate = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
};

double percentile_ms(const std::vector<std::uint64_t>& sorted_ns, double p) {
  if (sorted_ns.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted_ns.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_ns.size())));
  return static_cast<double>(sorted_ns[index]) / 1e6;
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

/// One measured point: fires `schedule.size()` requests at `rate_rps`
/// (0 = closed loop) and tallies latency/shed/error.
LoadPoint run_point(const std::string& host, std::uint16_t port,
                    const std::string& target,
                    const std::vector<std::string>& sequences,
                    const std::vector<std::uint32_t>& schedule,
                    std::uint64_t clients, double rate_rps) {
  using Clock = std::chrono::steady_clock;
  LoadPoint point;
  point.offered_rps = rate_rps;

  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> errors{0};
  std::mutex latency_mutex;
  std::vector<std::uint64_t> latencies_ns;
  latencies_ns.reserve(schedule.size());

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::uint64_t t = 0; t < clients; ++t) {
    pool.emplace_back([&] {
      std::vector<std::uint64_t> local_ns;
      while (true) {
        const std::uint64_t i = next.fetch_add(1);
        if (i >= schedule.size()) break;
        if (rate_rps > 0) {
          // Open loop: the i-th request is released at start + i/rate,
          // whether or not earlier ones have completed.
          const auto due = start + std::chrono::nanoseconds(static_cast<
              std::int64_t>(1e9 * static_cast<double>(i) / rate_rps));
          std::this_thread::sleep_until(due);
        }
        const std::string& sequence = sequences[schedule[i]];
        const Clock::time_point sent = Clock::now();
        try {
          const serve::HttpResponse response =
              serve::http_post(host, port, target, sequence);
          const auto elapsed = std::chrono::duration_cast<
              std::chrono::nanoseconds>(Clock::now() - sent);
          if (response.status == 200) {
            ok.fetch_add(1);
            local_ns.push_back(static_cast<std::uint64_t>(elapsed.count()));
          } else if (response.status == 503) {
            shed.fetch_add(1);
          } else {
            errors.fetch_add(1);
          }
        } catch (const serve::ClientError&) {
          errors.fetch_add(1);
        }
      }
      std::lock_guard lock(latency_mutex);
      latencies_ns.insert(latencies_ns.end(), local_ns.begin(),
                          local_ns.end());
    });
  }
  for (std::thread& thread : pool) thread.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::sort(latencies_ns.begin(), latencies_ns.end());
  point.ok = ok.load();
  point.shed = shed.load();
  point.errors = errors.load();
  point.achieved_rps = wall_s > 0 ? static_cast<double>(point.ok) / wall_s : 0;
  point.p50_ms = percentile_ms(latencies_ns, 0.50);
  point.p99_ms = percentile_ms(latencies_ns, 0.99);
  point.p999_ms = percentile_ms(latencies_ns, 0.999);
  const std::uint64_t total = point.ok + point.shed + point.errors;
  point.shed_rate =
      total > 0 ? static_cast<double>(point.shed) / static_cast<double>(total)
                : 0.0;
  return point;
}

bool parse_sweep(const std::string& text, std::vector<double>& rates) {
  std::string_view rest = text;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view item = rest.substr(0, comma);
    double value = 0;
    const auto [ptr, ec] =
        std::from_chars(item.data(), item.data() + item.size(), value);
    if (ec != std::errc{} || ptr != item.data() + item.size() || value <= 0) {
      return false;
    }
    rates.push_back(value);
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  return !rates.empty();
}

}  // namespace

int run_loadgen(std::span<const char* const> args, std::string_view program) {
  std::string host = "127.0.0.1";
  std::string queries_path;
  std::string mode = "closed";
  std::string sweep;
  std::string out_path;
  std::uint64_t port = 8765;
  std::uint64_t requests = 200;
  std::uint64_t clients = 4;
  std::uint64_t top_x = 1;
  std::uint64_t seed = 20230517;
  std::uint64_t zipf_n = 0;
  double zipf_s = 1.0;
  double rate = 0.0;
  bool demo = false;

  util::Options options;
  options.add_string("host", host, "server host (default 127.0.0.1)");
  options.add_uint("port", port, "server port");
  options.add_string("queries", queries_path,
                     "FASTA/FASTQ whose reads form the query population");
  options.add_flag("demo", demo, "use the simulated demo reads");
  options.add_uint("requests", requests,
                   "requests per measured point (default 200)");
  options.add_uint("clients", clients, "client threads (default 4)");
  options.add_string("mode", mode, "closed | open (default closed)");
  options.add_double("rate", rate,
                     "open-loop offered load in req/s (one point)");
  options.add_string("sweep", sweep,
                     "comma-separated open-loop rates, one point each "
                     "(overrides --rate)");
  options.add_double("zipf-s", zipf_s,
                     "Zipf skew exponent s (default 1.0; larger = hotter)");
  options.add_uint("zipf-n", zipf_n,
                   "Zipf population cap, 0 = all queries (default 0)");
  options.add_uint("seed", seed, "RNG seed for the rank schedule");
  options.add_uint("top-x", top_x, "top_x to request (default 1)");
  options.add_string("out", out_path, "write the JSON curve here (- = stdout)");
  try {
    (void)options.parse(args);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage(program);
    return kExitUsage;
  }
  if (port == 0 || port > 65535) {
    std::cerr << "error: --port must be in [1, 65535]\n";
    return kExitUsage;
  }
  if (mode != "closed" && mode != "open") {
    std::cerr << "error: --mode must be closed | open\n";
    return kExitUsage;
  }
  if (zipf_s <= 0) {
    std::cerr << "error: --zipf-s must be > 0\n";
    return kExitUsage;
  }
  std::vector<double> rates;
  if (!sweep.empty()) {
    if (!parse_sweep(sweep, rates)) {
      std::cerr << "error: --sweep expects positive comma-separated rates\n";
      return kExitUsage;
    }
  } else if (rate > 0) {
    rates.push_back(rate);
  }
  if (mode == "open" && rates.empty()) {
    std::cerr << "error: open mode needs --rate or --sweep\n";
    return kExitUsage;
  }

  std::vector<std::string> sequences;
  try {
    io::SequenceSet reads;
    if (demo) {
      io::SequenceSet unused_subjects;
      make_demo_dataset(seed, unused_subjects, reads);
    } else if (!queries_path.empty()) {
      io::load_into(queries_path, reads);
    } else {
      std::cerr << "error: --queries or --demo is required\n";
      return kExitUsage;
    }
    sequences.reserve(reads.size());
    for (io::SeqId id = 0; id < reads.size(); ++id) {
      sequences.emplace_back(reads.bases(id));
    }
  } catch (const std::exception& error) {
    std::cerr << "input error: " << error.what() << '\n';
    return kExitRuntime;
  }
  if (sequences.empty()) {
    std::cerr << "error: query set is empty\n";
    return kExitRuntime;
  }

  // Zipf rank schedule: rank 1 = sequences[0] (hottest). Pre-generated
  // sequentially from one seeded generator so a rerun offers the exact
  // same request stream regardless of thread interleaving.
  const std::uint64_t population =
      zipf_n > 0 ? std::min<std::uint64_t>(zipf_n, sequences.size())
                 : sequences.size();
  util::Xoshiro256ss rng(seed);
  util::zipf_distribution<std::uint64_t> zipf(population, zipf_s);
  std::vector<std::uint32_t> schedule(requests);
  for (std::uint64_t i = 0; i < requests; ++i) {
    schedule[i] = static_cast<std::uint32_t>(zipf(rng) - 1);
  }

  const std::uint16_t port16 = static_cast<std::uint16_t>(port);
  const std::uint64_t nthreads = std::max<std::uint64_t>(1, clients);
  const std::string target = "/map?top_x=" + std::to_string(top_x);

  std::vector<LoadPoint> points;
  if (mode == "closed") {
    points.push_back(run_point(host, port16, target, sequences, schedule,
                               nthreads, 0.0));
  }
  for (const double point_rate : rates) {
    points.push_back(run_point(host, port16, target, sequences, schedule,
                               nthreads, point_rate));
  }

  std::string json = "{\"benchmark\":\"serve_load\",\"mode\":\"" + mode +
                     "\",\"zipf_s\":" + format_double(zipf_s) +
                     ",\"queries\":" + std::to_string(population) +
                     ",\"requests\":" + std::to_string(requests) +
                     ",\"clients\":" + std::to_string(nthreads) +
                     ",\"seed\":" + std::to_string(seed) + ",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const LoadPoint& p = points[i];
    if (i > 0) json += ',';
    json += "{\"offered_rps\":" + format_double(p.offered_rps) +
            ",\"achieved_rps\":" + format_double(p.achieved_rps) +
            ",\"p50_ms\":" + format_double(p.p50_ms) +
            ",\"p99_ms\":" + format_double(p.p99_ms) +
            ",\"p999_ms\":" + format_double(p.p999_ms) +
            ",\"shed_rate\":" + format_double(p.shed_rate) +
            ",\"ok\":" + std::to_string(p.ok) +
            ",\"shed\":" + std::to_string(p.shed) +
            ",\"errors\":" + std::to_string(p.errors) + "}";
  }
  json += "]}\n";

  if (out_path.empty() || out_path == "-") {
    std::cout << json;
  } else {
    std::ofstream file(out_path);
    file << json;
    if (!file) {
      std::cerr << "error: cannot write " << out_path << '\n';
      return kExitRuntime;
    }
  }

  // A load test is a measurement, not an assertion: sheds are data. Only
  // finding zero completed requests (server absent/dead) is a failure.
  std::uint64_t total_ok = 0;
  for (const LoadPoint& p : points) total_ok += p.ok;
  if (total_ok == 0) {
    std::cerr << "error: no request completed — is the server up?\n";
    return kExitRuntime;
  }
  return kExitOk;
}

}  // namespace jem::cli
