#include "scaffold/scaffolder.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace jem::scaffold {

std::size_t ScaffoldSet::multi_contig_count() const noexcept {
  std::size_t count = 0;
  for (const Scaffold& scaffold : scaffolds) {
    if (scaffold.size() > 1) ++count;
  }
  return count;
}

std::size_t ScaffoldSet::largest() const noexcept {
  std::size_t best = 0;
  for (const Scaffold& scaffold : scaffolds) {
    best = std::max(best, scaffold.size());
  }
  return best;
}

std::size_t ScaffoldSet::n50_contigs() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(scaffolds.size());
  std::size_t total = 0;
  for (const Scaffold& scaffold : scaffolds) {
    sizes.push_back(scaffold.size());
    total += scaffold.size();
  }
  std::sort(sizes.rbegin(), sizes.rend());
  std::size_t cumulative = 0;
  for (std::size_t size : sizes) {
    cumulative += size;
    if (2 * cumulative >= total) return size;
  }
  return 0;
}

ScaffoldSet build_scaffolds(const LinkGraph& graph, std::size_t num_contigs,
                            const ScaffolderParams& params) {
  ScaffoldSet result;
  std::vector<bool> used(num_contigs, false);

  // A contig participates in chains only when its trusted degree is <= 2;
  // branchy contigs stay singletons.
  const auto chainable = [&](io::SeqId contig) {
    return graph.degree(contig, params.min_support) <= 2;
  };

  // Extend a chain from `start` away from `avoid` while the continuation is
  // unambiguous.
  const auto walk = [&](io::SeqId start, io::SeqId avoid,
                        std::vector<io::SeqId>& out) {
    io::SeqId prev = avoid;
    io::SeqId curr = start;
    while (true) {
      io::SeqId next = io::kInvalidSeqId;
      for (io::SeqId n : graph.neighbours(curr, params.min_support)) {
        if (n == prev || used[n] || !chainable(n)) continue;
        next = n;
        break;  // neighbours are sorted: lowest id wins
      }
      if (next == io::kInvalidSeqId) break;
      used[next] = true;
      out.push_back(next);
      prev = curr;
      curr = next;
    }
  };

  // Pass 1: open chains from endpoints (trusted degree <= 1).
  for (io::SeqId contig = 0; contig < num_contigs; ++contig) {
    if (used[contig] || !chainable(contig)) continue;
    if (graph.degree(contig, params.min_support) > 1) continue;
    used[contig] = true;
    Scaffold scaffold;
    scaffold.contigs.push_back(contig);
    walk(contig, io::kInvalidSeqId, scaffold.contigs);
    result.scaffolds.push_back(std::move(scaffold));
  }

  // Pass 2: cycles — every remaining chainable contig has degree 2 among
  // unused chainable contigs. Break each cycle at its lowest id.
  for (io::SeqId contig = 0; contig < num_contigs; ++contig) {
    if (used[contig] || !chainable(contig)) continue;
    used[contig] = true;
    Scaffold scaffold;
    scaffold.contigs.push_back(contig);
    walk(contig, io::kInvalidSeqId, scaffold.contigs);
    result.scaffolds.push_back(std::move(scaffold));
  }

  // Pass 3: branch-point contigs (degree > 2) as singletons.
  for (io::SeqId contig = 0; contig < num_contigs; ++contig) {
    if (used[contig]) continue;
    Scaffold scaffold;
    scaffold.contigs.push_back(contig);
    result.scaffolds.push_back(std::move(scaffold));
  }
  return result;
}

}  // namespace jem::scaffold
