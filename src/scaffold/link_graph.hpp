// LinkGraph — the contig-linking evidence structure of a hybrid scaffolding
// workflow (the paper's motivating application, §I, and future-work item
// ii): a long read whose prefix segment maps to contig a and whose suffix
// segment maps to contig b ≠ a witnesses that a and b are nearby on the
// genome. Accumulating these witnesses over all reads yields a weighted
// undirected multigraph over contigs; edges with enough support drive
// scaffold construction.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/mapper.hpp"

namespace jem::scaffold {

/// An undirected contig pair (a < b) with its supporting-read count.
struct Link {
  io::SeqId a = 0;
  io::SeqId b = 0;
  std::uint64_t support = 0;

  friend bool operator==(const Link&, const Link&) = default;
};

class LinkGraph {
 public:
  LinkGraph() = default;

  /// Adds one supporting read for the (unordered) pair {a, b}; a == b is
  /// ignored (a read inside one contig carries no linking evidence).
  void add_link(io::SeqId a, io::SeqId b);

  /// Builds the graph from end-segment mappings: consecutive (prefix,
  /// suffix) entries of the same read that both mapped to different
  /// contigs. Entries must be grouped by read (the order every mapper
  /// driver emits).
  static LinkGraph from_mappings(
      std::span<const core::SegmentMapping> mappings);

  /// All links with support >= min_support, ordered by (a, b).
  [[nodiscard]] std::vector<Link> links(std::uint64_t min_support = 1) const;

  /// Support of one pair (0 when absent).
  [[nodiscard]] std::uint64_t support(io::SeqId a, io::SeqId b) const;

  /// Neighbours of `contig` with support >= min_support, ascending id.
  [[nodiscard]] std::vector<io::SeqId> neighbours(
      io::SeqId contig, std::uint64_t min_support = 1) const;

  /// Degree of `contig` counting only edges with support >= min_support.
  [[nodiscard]] std::size_t degree(io::SeqId contig,
                                   std::uint64_t min_support = 1) const;

  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }

 private:
  std::map<std::pair<io::SeqId, io::SeqId>, std::uint64_t> edges_;
  std::map<io::SeqId, std::vector<io::SeqId>> adjacency_;
};

}  // namespace jem::scaffold
