// Scaffolder — turns the link graph into scaffold chains: maximal simple
// paths through contigs whose (support-filtered) degree is at most 2. A
// contig with three or more well-supported partners is a branch point
// (repeat or mis-join evidence) and terminates chains, the standard
// conservative policy of scaffolding tools.
#pragma once

#include <cstdint>
#include <vector>

#include "scaffold/link_graph.hpp"

namespace jem::scaffold {

struct ScaffolderParams {
  std::uint64_t min_support = 2;  // reads required to trust a link
};

/// One scaffold: an ordered walk over contig ids. Singletons (contigs with
/// no trusted links) are reported as length-1 scaffolds so the output is a
/// partition of the input contig set.
struct Scaffold {
  std::vector<io::SeqId> contigs;

  [[nodiscard]] std::size_t size() const noexcept { return contigs.size(); }
};

struct ScaffoldSet {
  std::vector<Scaffold> scaffolds;

  /// Number of scaffolds spanning more than one contig.
  [[nodiscard]] std::size_t multi_contig_count() const noexcept;

  /// Size of the largest scaffold (in contigs).
  [[nodiscard]] std::size_t largest() const noexcept;

  /// N50 over scaffold sizes measured in contigs per scaffold.
  [[nodiscard]] std::size_t n50_contigs() const;
};

/// Builds scaffolds for contigs [0, num_contigs) from the link graph.
/// Deterministic: chains start from the lowest-id eligible endpoint and
/// prefer the lowest-id continuation.
[[nodiscard]] ScaffoldSet build_scaffolds(const LinkGraph& graph,
                                          std::size_t num_contigs,
                                          const ScaffolderParams& params = {});

}  // namespace jem::scaffold
