#include "scaffold/link_graph.hpp"

#include <algorithm>

namespace jem::scaffold {

void LinkGraph::add_link(io::SeqId a, io::SeqId b) {
  if (a == b) return;
  if (a > b) std::swap(a, b);
  if (++edges_[{a, b}] == 1) {
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
  }
}

LinkGraph LinkGraph::from_mappings(
    std::span<const core::SegmentMapping> mappings) {
  LinkGraph graph;
  for (std::size_t i = 0; i + 1 < mappings.size(); ++i) {
    const core::SegmentMapping& prefix = mappings[i];
    const core::SegmentMapping& suffix = mappings[i + 1];
    if (prefix.read != suffix.read) continue;
    if (prefix.end != core::ReadEnd::kPrefix ||
        suffix.end != core::ReadEnd::kSuffix) {
      continue;
    }
    if (!prefix.result.mapped() || !suffix.result.mapped()) continue;
    graph.add_link(prefix.result.subject, suffix.result.subject);
  }
  return graph;
}

std::vector<Link> LinkGraph::links(std::uint64_t min_support) const {
  std::vector<Link> out;
  for (const auto& [pair, support] : edges_) {
    if (support >= min_support) {
      out.push_back({pair.first, pair.second, support});
    }
  }
  return out;
}

std::uint64_t LinkGraph::support(io::SeqId a, io::SeqId b) const {
  if (a > b) std::swap(a, b);
  const auto it = edges_.find({a, b});
  return it == edges_.end() ? 0 : it->second;
}

std::vector<io::SeqId> LinkGraph::neighbours(io::SeqId contig,
                                             std::uint64_t min_support) const {
  std::vector<io::SeqId> out;
  const auto it = adjacency_.find(contig);
  if (it == adjacency_.end()) return out;
  for (io::SeqId other : it->second) {
    if (support(contig, other) >= min_support) out.push_back(other);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t LinkGraph::degree(io::SeqId contig,
                              std::uint64_t min_support) const {
  return neighbours(contig, min_support).size();
}

}  // namespace jem::scaffold
