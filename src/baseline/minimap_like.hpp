// MinimapLikeMapper — a seed-and-chain mapper in the style of Minimap2
// (Li 2018), the second comparator the paper discusses (§IV-A: "it follows
// a more classical seed and extend, alignment-based approach, but it also
// benefits from the use of minimizers internally for the seeding step").
// The paper could not compare against Minimap2 head-to-head because it
// reports multiple hits per query; here the best chain is reduced to a top
// hit so all three mappers are directly comparable.
//
// Pipeline (faithful to Minimap2's structure, without base-level extension):
//  1. seeding  — anchors (subject position, query position) from shared
//     canonical minimizers, repeat-masked;
//  2. chaining — per subject and per strand, a dynamic program over anchors
//     sorted by subject position maximizes Σ anchor bonus − gap penalties,
//     with Minimap2's bounded-lookback heuristic;
//  3. report   — the subject of the globally best chain, with the chain's
//     subject span and anchor count.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "baseline/winnow_index.hpp"
#include "core/mapper.hpp"
#include "io/paf.hpp"
#include "io/sequence_set.hpp"
#include "util/thread_pool.hpp"

namespace jem::baseline {

struct MinimapParams {
  core::MinimizerParams minimizer{15, 10};  // minimap2-ish defaults (w=10)
  std::uint32_t segment_length = 1000;      // end-segment length
  std::uint32_t max_gap = 2000;             // max subject gap between anchors
  std::uint32_t bandwidth = 500;            // max diagonal drift in a chain
  int max_lookback = 50;                    // DP predecessors examined
  std::uint32_t min_chain_anchors = 3;      // report threshold
  std::size_t max_occurrences = 1024;       // repeat mask
};

struct ChainHit {
  io::SeqId subject = io::kInvalidSeqId;
  std::uint32_t subject_begin = 0;  // chain span on the subject
  std::uint32_t subject_end = 0;
  std::uint32_t anchors = 0;        // anchors in the best chain
  double score = 0.0;
  bool reverse = false;             // chain orientation

  [[nodiscard]] bool mapped() const noexcept {
    return subject != io::kInvalidSeqId;
  }
};

class MinimapLikeMapper {
 public:
  MinimapLikeMapper(const io::SequenceSet& subjects, MinimapParams params);

  [[nodiscard]] const MinimapParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] std::size_t index_postings() const noexcept {
    return index_.postings();
  }

  /// Maps one query segment to its best chain.
  [[nodiscard]] ChainHit map_segment(std::string_view segment) const;

  /// Maps end segments of all reads, in the shared SegmentMapping format
  /// (votes carries the chain's anchor count).
  [[nodiscard]] std::vector<core::SegmentMapping> map_reads(
      const io::SequenceSet& reads, io::SeqId begin, io::SeqId end) const;
  [[nodiscard]] std::vector<core::SegmentMapping> map_reads(
      const io::SequenceSet& reads) const;
  [[nodiscard]] std::vector<core::SegmentMapping> map_reads_parallel(
      const io::SequenceSet& reads, util::ThreadPool& pool) const;

  /// Maps end segments of all reads and emits one PAF record per mapped
  /// segment (coordinates from the best chain; matches approximated by
  /// anchors * k; mapq from the chain score).
  [[nodiscard]] std::vector<io::PafRecord> map_reads_paf(
      const io::SequenceSet& reads) const;

 private:
  const io::SequenceSet& subjects_;
  MinimapParams params_;
  WinnowIndex index_;
};

}  // namespace jem::baseline
