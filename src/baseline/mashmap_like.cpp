#include "baseline/mashmap_like.hpp"

#include <algorithm>

namespace jem::baseline {

MashmapLikeMapper::MashmapLikeMapper(const io::SequenceSet& subjects,
                                     MashmapParams params)
    : subjects_(subjects),
      params_(params),
      index_(subjects, params.minimizer()) {}

MashmapHit MashmapLikeMapper::map_segment(std::string_view segment) const {
  const std::vector<core::Minimizer> query_minimizers =
      core::minimizer_scan(segment, params_.minimizer());
  if (query_minimizers.empty()) return {};

  // Distinct query minimizer k-mers = W(Q).
  std::vector<core::KmerCode> query_kmers;
  query_kmers.reserve(query_minimizers.size());
  for (const core::Minimizer& m : query_minimizers) {
    query_kmers.push_back(m.kmer);
  }
  std::sort(query_kmers.begin(), query_kmers.end());
  query_kmers.erase(std::unique(query_kmers.begin(), query_kmers.end()),
                    query_kmers.end());
  const auto sketch_size = static_cast<std::uint32_t>(query_kmers.size());

  // L1: collect all occurrences of the query's minimizers in the subjects.
  struct Match {
    io::SeqId subject;
    std::uint32_t position;
    core::KmerCode kmer;
  };
  std::vector<Match> matches;
  for (core::KmerCode kmer : query_kmers) {
    for (const Occurrence& occ :
         index_.lookup_masked(kmer, params_.max_occurrences)) {
      matches.push_back({occ.subject, occ.position, kmer});
    }
  }
  if (matches.empty()) return {};

  std::sort(matches.begin(), matches.end(),
            [](const Match& a, const Match& b) {
              if (a.subject != b.subject) return a.subject < b.subject;
              return a.position < b.position;
            });

  // Per subject, slide a window of length ℓ over the matched positions and
  // maximize the number of distinct query minimizers inside (L1 count, also
  // the intersection size for L2).
  MashmapHit best;
  std::size_t group_begin = 0;
  while (group_begin < matches.size()) {
    const io::SeqId subject = matches[group_begin].subject;
    std::size_t group_end = group_begin;
    while (group_end < matches.size() &&
           matches[group_end].subject == subject) {
      ++group_end;
    }

    // Distinct-kmer count within the sliding window via per-kmer
    // multiplicity bookkeeping.
    std::unordered_map<core::KmerCode, std::uint32_t> in_window;
    std::uint32_t distinct = 0;
    std::size_t left = group_begin;
    for (std::size_t right = group_begin; right < group_end; ++right) {
      if (++in_window[matches[right].kmer] == 1) ++distinct;
      while (matches[right].position - matches[left].position >
             params_.segment_length) {
        if (--in_window[matches[left].kmer] == 0) --distinct;
        ++left;
      }
      if (distinct < params_.min_shared) continue;

      // L2: winnowed Jaccard for the window anchored at matches[left].
      const std::uint32_t window_begin = matches[left].position;
      const std::uint32_t window_minimizers = index_.count_in_window(
          subject, window_begin, window_begin + params_.segment_length);
      const std::uint32_t union_size =
          sketch_size + window_minimizers - distinct;
      const double jaccard =
          union_size == 0
              ? 0.0
              : static_cast<double>(distinct) / static_cast<double>(union_size);

      const bool better =
          jaccard > best.jaccard ||
          (jaccard == best.jaccard &&
           (distinct > best.shared ||
            (distinct == best.shared && subject < best.subject)));
      if (better) {
        best = {subject, window_begin, distinct, jaccard};
      }
    }
    group_begin = group_end;
  }

  if (!best.mapped() || best.jaccard < params_.min_jaccard) return {};
  return best;
}

std::vector<core::SegmentMapping> MashmapLikeMapper::map_reads(
    const io::SequenceSet& reads, io::SeqId begin, io::SeqId end) const {
  std::vector<core::SegmentMapping> mappings;
  for (io::SeqId read = begin; read < end; ++read) {
    for (const core::EndSegment& segment : core::extract_end_segments(
             read, reads.bases(read), params_.segment_length)) {
      const MashmapHit hit = map_segment(segment.bases);
      core::SegmentMapping mapping;
      mapping.read = read;
      mapping.end = segment.end;
      mapping.offset = segment.offset;
      mapping.segment_length =
          static_cast<std::uint32_t>(segment.bases.size());
      mapping.result.subject = hit.subject;
      mapping.result.votes = hit.shared;
      mappings.push_back(mapping);
    }
  }
  return mappings;
}

std::vector<core::SegmentMapping> MashmapLikeMapper::map_reads(
    const io::SequenceSet& reads) const {
  return map_reads(reads, 0, static_cast<io::SeqId>(reads.size()));
}

std::vector<core::SegmentMapping> MashmapLikeMapper::map_reads_parallel(
    const io::SequenceSet& reads, util::ThreadPool& pool) const {
  std::vector<std::vector<core::SegmentMapping>> partials(pool.size());
  util::parallel_for_blocks(
      pool, 0, reads.size(), pool.size(),
      [&](std::size_t block, std::size_t begin, std::size_t end) {
        partials[block] = map_reads(reads, static_cast<io::SeqId>(begin),
                                    static_cast<io::SeqId>(end));
      });
  std::vector<core::SegmentMapping> mappings;
  for (auto& partial : partials) {
    mappings.insert(mappings.end(), partial.begin(), partial.end());
  }
  return mappings;
}

}  // namespace jem::baseline
