// WinnowIndex — the positional minimizer index shared by the comparator
// mappers (Mashmap-like and minimap2-like): for every canonical minimizer
// of every subject, the list of (subject, position) occurrences, plus the
// per-subject position-sorted minimizer lists used for windowed density
// queries. Highly repetitive minimizers can be masked at query time via the
// occurrence cap.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/minimizer.hpp"
#include "io/sequence_set.hpp"

namespace jem::baseline {

struct Occurrence {
  io::SeqId subject = 0;
  std::uint32_t position = 0;
};

class WinnowIndex {
 public:
  WinnowIndex(const io::SequenceSet& subjects,
              const core::MinimizerParams& params);

  [[nodiscard]] const core::MinimizerParams& params() const noexcept {
    return params_;
  }

  /// All occurrences of `kmer` (empty when absent).
  [[nodiscard]] std::span<const Occurrence> lookup(
      core::KmerCode kmer) const;

  /// Occurrences of `kmer`, or empty when its frequency exceeds `cap`
  /// (the repeat mask).
  [[nodiscard]] std::span<const Occurrence> lookup_masked(
      core::KmerCode kmer, std::size_t cap) const;

  /// Position-sorted minimizer positions of one subject.
  [[nodiscard]] std::span<const std::uint32_t> subject_positions(
      io::SeqId subject) const;

  /// Number of minimizers of `subject` with position in [begin, end].
  [[nodiscard]] std::uint32_t count_in_window(io::SeqId subject,
                                              std::uint32_t begin,
                                              std::uint32_t end) const;

  [[nodiscard]] std::size_t postings() const noexcept { return postings_; }

 private:
  core::MinimizerParams params_;
  std::unordered_map<core::KmerCode, std::vector<Occurrence>> index_;
  std::vector<std::vector<std::uint32_t>> subject_positions_;
  std::size_t postings_ = 0;
};

}  // namespace jem::baseline
