#include "baseline/winnow_index.hpp"

#include <algorithm>

namespace jem::baseline {

WinnowIndex::WinnowIndex(const io::SequenceSet& subjects,
                         const core::MinimizerParams& params)
    : params_(params) {
  subject_positions_.resize(subjects.size());
  for (io::SeqId id = 0; id < subjects.size(); ++id) {
    const std::vector<core::Minimizer> minimizers =
        core::minimizer_scan(subjects.bases(id), params_);
    auto& positions = subject_positions_[id];
    positions.reserve(minimizers.size());
    for (const core::Minimizer& m : minimizers) {
      index_[m.kmer].push_back({id, m.position});
      positions.push_back(m.position);
      ++postings_;
    }
  }
}

std::span<const Occurrence> WinnowIndex::lookup(core::KmerCode kmer) const {
  const auto it = index_.find(kmer);
  if (it == index_.end()) return {};
  return it->second;
}

std::span<const Occurrence> WinnowIndex::lookup_masked(
    core::KmerCode kmer, std::size_t cap) const {
  const auto occurrences = lookup(kmer);
  if (occurrences.size() > cap) return {};
  return occurrences;
}

std::span<const std::uint32_t> WinnowIndex::subject_positions(
    io::SeqId subject) const {
  return subject_positions_.at(subject);
}

std::uint32_t WinnowIndex::count_in_window(io::SeqId subject,
                                           std::uint32_t begin,
                                           std::uint32_t end) const {
  const auto& positions = subject_positions_.at(subject);
  const auto lo = std::lower_bound(positions.begin(), positions.end(), begin);
  const auto hi = std::upper_bound(positions.begin(), positions.end(), end);
  return static_cast<std::uint32_t>(std::distance(lo, hi));
}

}  // namespace jem::baseline
