#include "baseline/minimap_like.hpp"

#include <algorithm>
#include <cmath>

namespace jem::baseline {

MinimapLikeMapper::MinimapLikeMapper(const io::SequenceSet& subjects,
                                     MinimapParams params)
    : subjects_(subjects),
      params_(params),
      index_(subjects, params.minimizer) {}

namespace {

struct Anchor {
  io::SeqId subject;
  std::uint32_t subject_pos;
  std::uint32_t query_pos;
};

}  // namespace

ChainHit MinimapLikeMapper::map_segment(std::string_view segment) const {
  const std::vector<core::Minimizer> query_minimizers =
      core::minimizer_scan(segment, params_.minimizer);
  if (query_minimizers.empty()) return {};

  // 1. Seeding: every (subject occurrence, query occurrence) pair of a
  // shared minimizer becomes an anchor.
  std::vector<Anchor> anchors;
  for (const core::Minimizer& m : query_minimizers) {
    for (const Occurrence& occ :
         index_.lookup_masked(m.kmer, params_.max_occurrences)) {
      anchors.push_back({occ.subject, occ.position, m.position});
    }
  }
  if (anchors.empty()) return {};

  std::sort(anchors.begin(), anchors.end(),
            [](const Anchor& a, const Anchor& b) {
              if (a.subject != b.subject) return a.subject < b.subject;
              if (a.subject_pos != b.subject_pos) {
                return a.subject_pos < b.subject_pos;
              }
              return a.query_pos < b.query_pos;
            });

  // 2. Chaining per subject group, once per orientation. Canonical
  // minimizers carry no strand, so a reverse-complement placement shows up
  // as anchors whose query positions *decrease* along the subject; the
  // forward pass requires them to increase, the reverse pass to decrease.
  const int k = params_.minimizer.k;
  ChainHit best;

  const auto chain_group = [&](std::span<const Anchor> group, bool reverse) {
    const std::size_t n = group.size();
    std::vector<double> score(n);
    std::vector<std::int32_t> parent(n, -1);
    double group_best = -1.0;
    std::size_t group_best_index = 0;

    for (std::size_t i = 0; i < n; ++i) {
      score[i] = static_cast<double>(k);  // a chain of one anchor
      const std::size_t lookback_begin =
          i > static_cast<std::size_t>(params_.max_lookback)
              ? i - static_cast<std::size_t>(params_.max_lookback)
              : 0;
      for (std::size_t j = i; j-- > lookback_begin;) {
        const std::int64_t ds =
            static_cast<std::int64_t>(group[i].subject_pos) -
            static_cast<std::int64_t>(group[j].subject_pos);
        const std::int64_t dq =
            reverse ? static_cast<std::int64_t>(group[j].query_pos) -
                          static_cast<std::int64_t>(group[i].query_pos)
                    : static_cast<std::int64_t>(group[i].query_pos) -
                          static_cast<std::int64_t>(group[j].query_pos);
        if (ds <= 0 || dq <= 0) continue;  // must advance on both axes
        if (ds > params_.max_gap || dq > params_.max_gap) continue;
        const std::int64_t drift = ds - dq;
        if (std::llabs(drift) > params_.bandwidth) continue;

        // Minimap2-style score: matched bases bonus minus a concave gap
        // penalty on the diagonal drift.
        const double bonus =
            static_cast<double>(std::min<std::int64_t>(k, std::min(ds, dq)));
        const double gap_cost =
            drift == 0
                ? 0.0
                : 0.01 * static_cast<double>(k) *
                          static_cast<double>(std::llabs(drift)) +
                      0.5 * std::log2(static_cast<double>(std::llabs(drift)));
        const double candidate = score[j] + bonus - gap_cost;
        if (candidate > score[i]) {
          score[i] = candidate;
          parent[i] = static_cast<std::int32_t>(j);
        }
      }
      if (score[i] > group_best) {
        group_best = score[i];
        group_best_index = i;
      }
    }

    if (group_best <= best.score) return;
    // Walk the chain back for its span and anchor count.
    std::uint32_t count = 0;
    std::size_t cursor = group_best_index;
    std::uint32_t span_begin = group[cursor].subject_pos;
    while (true) {
      span_begin = group[cursor].subject_pos;
      ++count;
      if (parent[cursor] < 0) break;
      cursor = static_cast<std::size_t>(parent[cursor]);
    }
    if (count < params_.min_chain_anchors) return;
    best.subject = group.front().subject;
    best.subject_begin = span_begin;
    best.subject_end = group[group_best_index].subject_pos +
                       static_cast<std::uint32_t>(k);
    best.anchors = count;
    best.score = group_best;
    best.reverse = reverse;
  };

  std::size_t group_begin = 0;
  while (group_begin < anchors.size()) {
    const io::SeqId subject = anchors[group_begin].subject;
    std::size_t group_end = group_begin;
    while (group_end < anchors.size() &&
           anchors[group_end].subject == subject) {
      ++group_end;
    }
    const std::span<const Anchor> group(anchors.data() + group_begin,
                                        group_end - group_begin);
    chain_group(group, /*reverse=*/false);
    chain_group(group, /*reverse=*/true);
    group_begin = group_end;
  }
  return best;
}

std::vector<core::SegmentMapping> MinimapLikeMapper::map_reads(
    const io::SequenceSet& reads, io::SeqId begin, io::SeqId end) const {
  std::vector<core::SegmentMapping> mappings;
  for (io::SeqId read = begin; read < end; ++read) {
    for (const core::EndSegment& segment : core::extract_end_segments(
             read, reads.bases(read), params_.segment_length)) {
      const ChainHit hit = map_segment(segment.bases);
      core::SegmentMapping mapping;
      mapping.read = read;
      mapping.end = segment.end;
      mapping.offset = segment.offset;
      mapping.segment_length =
          static_cast<std::uint32_t>(segment.bases.size());
      mapping.result.subject = hit.subject;
      mapping.result.votes = hit.anchors;
      mappings.push_back(mapping);
    }
  }
  return mappings;
}

std::vector<core::SegmentMapping> MinimapLikeMapper::map_reads(
    const io::SequenceSet& reads) const {
  return map_reads(reads, 0, static_cast<io::SeqId>(reads.size()));
}

std::vector<io::PafRecord> MinimapLikeMapper::map_reads_paf(
    const io::SequenceSet& reads) const {
  std::vector<io::PafRecord> records;
  const auto k = static_cast<std::uint64_t>(params_.minimizer.k);
  for (io::SeqId read = 0; read < reads.size(); ++read) {
    for (const core::EndSegment& segment : core::extract_end_segments(
             read, reads.bases(read), params_.segment_length)) {
      const ChainHit hit = map_segment(segment.bases);
      if (!hit.mapped()) continue;
      io::PafRecord rec;
      rec.query_name = std::string(reads.name(read));
      rec.query_length = reads.length(read);
      rec.query_begin = segment.offset;
      rec.query_end = segment.offset + segment.bases.size();
      rec.strand = hit.reverse ? '-' : '+';
      rec.target_name = std::string(subjects_.name(hit.subject));
      rec.target_length = subjects_.length(hit.subject);
      rec.target_begin = hit.subject_begin;
      rec.target_end = hit.subject_end;
      rec.matches = static_cast<std::uint64_t>(hit.anchors) * k;
      rec.alignment_length = hit.subject_end - hit.subject_begin;
      rec.mapq = static_cast<std::uint32_t>(
          std::min(60.0, hit.score / 10.0));
      records.push_back(std::move(rec));
    }
  }
  return records;
}

std::vector<core::SegmentMapping> MinimapLikeMapper::map_reads_parallel(
    const io::SequenceSet& reads, util::ThreadPool& pool) const {
  std::vector<std::vector<core::SegmentMapping>> partials(pool.size());
  util::parallel_for_blocks(
      pool, 0, reads.size(), pool.size(),
      [&](std::size_t block, std::size_t begin, std::size_t end) {
        partials[block] = map_reads(reads, static_cast<io::SeqId>(begin),
                                    static_cast<io::SeqId>(end));
      });
  std::vector<core::SegmentMapping> mappings;
  for (auto& partial : partials) {
    mappings.insert(mappings.end(), partial.begin(), partial.end());
  }
  return mappings;
}

}  // namespace jem::baseline
