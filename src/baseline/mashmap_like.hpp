// MashmapLikeMapper — reimplementation of the state-of-the-art comparator
// the paper evaluates against (Mashmap; Jain et al., RECOMB 2017).
//
// Mashmap's structural difference from JEM-mapper (paper §III-B2): it keeps,
// for every minimizer, the list of all *positions* where it occurs in the
// subjects. At query time, the candidate subject regions with maximal local
// intersection of query minimizers are detected and scored with a winnowed
// Jaccard estimate. JEM-mapper instead bakes the segment length into the
// sketch so no positional post-filtering is needed.
//
// Stages implemented (following the published algorithm):
//  L1  candidate-region detection: all (subject, position) occurrences of
//      the query's minimizers are collected, grouped per subject, and
//      windows of segment length ℓ with at least `min_shared` distinct
//      query minimizers become candidates;
//  L2  refinement: per candidate window the winnowed Jaccard
//      |W(Q) ∩ W(window)| / |W(Q) ∪ W(window)| is maximized over window
//      offsets; the subject with the best estimate is the reported top hit.
//
// Highly repetitive minimizers (occurrence lists longer than
// `max_occurrences`) are masked, mirroring Mashmap's frequency filter.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "baseline/winnow_index.hpp"
#include "core/mapper.hpp"
#include "core/minimizer.hpp"
#include "io/sequence_set.hpp"
#include "util/thread_pool.hpp"

namespace jem::baseline {

struct MashmapParams {
  int k = 16;
  std::uint32_t segment_length = 1000;  // ℓ — same as JEM for head-to-head
  // Mashmap sizes its winnowing window from the per-segment sketch size s:
  // the expected number of distinct minimizers over an ℓ-long segment is
  // ~2ℓ/(w+1), so w ≈ 2ℓ/s - 1. The published default (s = 200 for
  // segment-scale mapping) yields a much *denser* sampling than JEM's
  // w = 100 — that density is the work JEM's interval sketch avoids, and
  // faithfully reproducing it is what makes the runtime comparison of
  // Table II meaningful.
  std::uint32_t sketch_size = 200;      // s
  std::uint32_t min_shared = 2;         // L1 candidate threshold
  double min_jaccard = 0.0;             // report threshold on the L2 score
  std::size_t max_occurrences = 1024;   // minimizer frequency mask

  /// The winnowing window implied by (segment_length, sketch_size).
  [[nodiscard]] core::MinimizerParams minimizer() const noexcept {
    const std::uint32_t window =
        sketch_size == 0 ? 1 : 2 * segment_length / sketch_size;
    return {k, static_cast<int>(window < 2 ? 1 : window - 1)};
  }
};

/// A mapped segment with the positional information Mashmap reports.
struct MashmapHit {
  io::SeqId subject = io::kInvalidSeqId;
  std::uint32_t position = 0;   // window start on the subject
  std::uint32_t shared = 0;     // |W(Q) ∩ W(window)|
  double jaccard = 0.0;

  [[nodiscard]] bool mapped() const noexcept {
    return subject != io::kInvalidSeqId;
  }
};

class MashmapLikeMapper {
 public:
  MashmapLikeMapper(const io::SequenceSet& subjects, MashmapParams params);

  [[nodiscard]] const MashmapParams& params() const noexcept {
    return params_;
  }

  /// Number of indexed (kmer -> occurrence) postings.
  [[nodiscard]] std::size_t index_postings() const noexcept {
    return index_.postings();
  }

  /// Maps one query segment; returns the top hit (or an unmapped result).
  [[nodiscard]] MashmapHit map_segment(std::string_view segment) const;

  /// Maps the end segments of reads [begin, end), in the same output format
  /// as JemMapper so the evaluators can compare them directly.
  [[nodiscard]] std::vector<core::SegmentMapping> map_reads(
      const io::SequenceSet& reads, io::SeqId begin, io::SeqId end) const;
  [[nodiscard]] std::vector<core::SegmentMapping> map_reads(
      const io::SequenceSet& reads) const;
  [[nodiscard]] std::vector<core::SegmentMapping> map_reads_parallel(
      const io::SequenceSet& reads, util::ThreadPool& pool) const;

 private:
  const io::SequenceSet& subjects_;
  MashmapParams params_;
  WinnowIndex index_;
};

}  // namespace jem::baseline
