#include "io/batch_stream.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace jem::io {

BatchStream::BatchStream(std::istream& in, std::size_t batch_size)
    : reader_(in), batch_size_(batch_size == 0 ? 1 : batch_size) {}

std::uint64_t BatchStream::skip(std::uint64_t batches) {
  std::uint64_t records = 0;
  for (std::uint64_t b = 0; b < batches; ++b) {
    SequenceSet reads = reader_.next_batch(batch_size_);
    if (reads.empty()) break;
    records += reads.size();
    ++batches_read_;  // the skipped batch consumes its index
    ++batches_skipped_;
  }
  return records;
}

bool BatchStream::next(ReadBatch& batch) {
  for (;;) {
    const std::uint64_t first = reader_.records_read();
    SequenceSet reads = reader_.next_batch(batch_size_);
    if (reads.empty()) return false;
    if (injector_ != nullptr && !injector_->fire("stream.next")) {
      ++batches_dropped_;
      obs::default_registry().counter("io.batch.dropped").add(1);
      continue;  // batch lost in transit; deliver the next one instead
    }
    batch.index = batches_read_++;
    batch.first_record = first;
    batch.reads = std::move(reads);
    obs::default_registry().counter("io.batch.read").add(1);
    return true;
  }
}

}  // namespace jem::io
