#include "io/batch_stream.hpp"

#include <utility>

namespace jem::io {

BatchStream::BatchStream(std::istream& in, std::size_t batch_size)
    : reader_(in), batch_size_(batch_size == 0 ? 1 : batch_size) {}

bool BatchStream::next(ReadBatch& batch) {
  for (;;) {
    const std::uint64_t first = reader_.records_read();
    SequenceSet reads = reader_.next_batch(batch_size_);
    if (reads.empty()) return false;
    if (injector_ != nullptr && !injector_->fire("stream.next")) {
      ++batches_dropped_;
      continue;  // batch lost in transit; deliver the next one instead
    }
    batch.index = batches_read_++;
    batch.first_record = first;
    batch.reads = std::move(reads);
    return true;
  }
}

}  // namespace jem::io
