// PackedSequenceSet — 2-bit-packed DNA storage with N-position exceptions.
//
// The paper's full-scale inputs reach 4.4 Gbp of query data; at one byte
// per base that is 4.4 GB of sequence alone. Packing ACGT into 2 bits cuts
// memory 4x, which is what lets a single node hold the working set. Bases
// outside ACGT (N and IUPAC codes, rare in practice) are stored as a sorted
// exception list per sequence and restored on decode.
//
// The packed store trades random-access string_views for explicit decode
// calls; it targets cold storage of large read sets (decode a batch, map,
// discard), while the arena-based SequenceSet remains the hot-path
// container.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "io/sequence.hpp"
#include "io/sequence_set.hpp"

namespace jem::io {

class PackedSequenceSet {
 public:
  PackedSequenceSet() = default;

  /// Appends a sequence (case-insensitive; anything outside ACGT is
  /// preserved as 'N'). Returns its dense id.
  SeqId add(std::string_view name, std::string_view bases);

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }
  [[nodiscard]] bool empty() const noexcept { return names_.empty(); }
  [[nodiscard]] std::uint64_t total_bases() const noexcept {
    return total_bases_;
  }

  [[nodiscard]] std::string_view name(SeqId id) const;
  [[nodiscard]] std::size_t length(SeqId id) const;

  /// Decodes the full sequence.
  [[nodiscard]] std::string decode(SeqId id) const;

  /// Decodes bases [begin, begin + count) of the sequence (clamped to its
  /// length).
  [[nodiscard]] std::string decode(SeqId id, std::size_t begin,
                                   std::size_t count) const;

  /// Approximate heap footprint of the stored bases (packed words +
  /// exception lists), for the compression-ratio accounting.
  [[nodiscard]] std::size_t payload_bytes() const noexcept;

  /// Converts to/from the plain arena container.
  [[nodiscard]] static PackedSequenceSet from_sequence_set(
      const SequenceSet& set);
  [[nodiscard]] SequenceSet to_sequence_set() const;

 private:
  struct Meta {
    std::uint64_t word_offset = 0;  // first packed word of this sequence
    std::uint64_t length = 0;       // bases
    std::uint64_t n_offset = 0;     // first entry in n_positions_
    std::uint64_t n_count = 0;      // exception count
  };

  std::vector<std::string> names_;
  std::vector<Meta> meta_;
  std::vector<std::uint64_t> words_;        // 32 bases per word, LSB-first
  std::vector<std::uint64_t> n_positions_;  // per-sequence sorted positions
  std::uint64_t total_bases_ = 0;
};

}  // namespace jem::io
