#include "io/stream_reader.hpp"

#include <cctype>

#include "util/string_util.hpp"

namespace jem::io {

namespace {

void split_header(std::string_view header, SequenceRecord& rec) {
  const std::size_t ws = header.find_first_of(" \t");
  if (ws == std::string_view::npos) {
    rec.name = std::string(header);
    rec.comment.clear();
  } else {
    rec.name = std::string(header.substr(0, ws));
    rec.comment = std::string(util::trim(header.substr(ws + 1)));
  }
  if (rec.name.empty()) {
    throw ParseError("sequence header with empty name");
  }
}

void append_bases(std::string& dst, std::string_view line) {
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
    dst.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
}

}  // namespace

SequenceStreamReader::SequenceStreamReader(std::istream& in) : in_(in) {
  detect_format();
}

bool SequenceStreamReader::get_line(std::string& line) {
  if (!std::getline(in_, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

void SequenceStreamReader::detect_format() {
  int c = in_.peek();
  while (c != std::char_traits<char>::eof() &&
         std::isspace(static_cast<unsigned char>(c)) != 0) {
    in_.get();
    c = in_.peek();
  }
  if (c == std::char_traits<char>::eof()) {
    format_ = Format::kEmpty;
  } else if (c == '>') {
    format_ = Format::kFasta;
  } else if (c == '@') {
    format_ = Format::kFastq;
  } else {
    throw ParseError("input is neither FASTA ('>') nor FASTQ ('@')");
  }
}

bool SequenceStreamReader::next(SequenceRecord& record) {
  record = {};
  if (format_ == Format::kEmpty) return false;

  std::string line;
  if (format_ == Format::kFastq) {
    // Skip blank separator lines.
    bool got = false;
    while ((got = get_line(line)) && line.empty()) {
    }
    if (!got) return false;
    if (line.front() != '@') {
      throw ParseError("FASTQ record does not start with '@': " + line);
    }
    split_header(std::string_view(line).substr(1), record);
    if (!get_line(line)) {
      throw ParseError("FASTQ record '" + record.name + "' truncated");
    }
    append_bases(record.bases, line);
    if (!get_line(line) || line.empty() || line.front() != '+') {
      throw ParseError("FASTQ record '" + record.name + "' missing '+'");
    }
    if (!get_line(line)) {
      throw ParseError("FASTQ record '" + record.name + "' has no quality");
    }
    record.quality = line;
    if (record.quality.size() != record.bases.size()) {
      throw ParseError("FASTQ record '" + record.name +
                       "': quality length != sequence length");
    }
    ++records_read_;
    return true;
  }

  // FASTA: consume the pending header (or find the first one).
  if (!has_pending_header_) {
    bool got = false;
    while ((got = get_line(pending_header_)) && pending_header_.empty()) {
    }
    if (!got) {
      format_ = Format::kEmpty;
      return false;
    }
    if (pending_header_.front() != '>') {
      throw ParseError("FASTA input does not start with '>'");
    }
    has_pending_header_ = true;
  }
  split_header(std::string_view(pending_header_).substr(1), record);
  has_pending_header_ = false;

  while (get_line(line)) {
    if (line.empty()) continue;
    if (line.front() == '>') {
      pending_header_ = line;
      has_pending_header_ = true;
      break;
    }
    append_bases(record.bases, line);
  }
  if (record.bases.empty()) {
    throw ParseError("FASTA record '" + record.name + "' has no sequence");
  }
  ++records_read_;
  return true;
}

SequenceSet SequenceStreamReader::next_batch(std::size_t max_records) {
  SequenceSet batch;
  SequenceRecord record;
  for (std::size_t i = 0; i < max_records; ++i) {
    if (!next(record)) break;
    batch.add(record.name, record.bases);
  }
  return batch;
}

}  // namespace jem::io
