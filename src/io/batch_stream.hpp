// BatchStream — chunked FASTA/FASTQ input for the streaming mapping engine.
// Wraps SequenceStreamReader and hands out fixed-size ReadBatch units, each
// carrying its position in the stream so downstream stages can restore global
// ordering (and global read ids) after parallel processing.
#pragma once

#include <cstdint>
#include <istream>

#include "io/sequence.hpp"
#include "io/sequence_set.hpp"
#include "io/stream_reader.hpp"
#include "util/fault_plan.hpp"

namespace jem::io {

/// One chunk of the query stream. Read ids inside `reads` are batch-local
/// (0-based); `first_record` is the global index of read 0 of this batch.
struct ReadBatch {
  std::uint64_t index = 0;         // 0-based batch number
  std::uint64_t first_record = 0;  // global index of the batch's first read
  SequenceSet reads;
};

class BatchStream {
 public:
  /// The stream must outlive the BatchStream. `batch_size` is clamped to at
  /// least 1 record per batch.
  BatchStream(std::istream& in, std::size_t batch_size);

  /// Parses the next batch into `batch` (contents overwritten). Returns
  /// false at end of input. Throws ParseError on malformed records, and
  /// util::FaultAbort when an attached injector aborts "stream.next".
  [[nodiscard]] bool next(ReadBatch& batch);

  /// Fast-forwards past `batches` batches without delivering them — the
  /// resume path: a journal that says n batches are already durable skips
  /// them here, and the next delivered batch carries index n (indices
  /// continue as if the skipped prefix had been consumed normally). Returns
  /// the number of records skipped; stops early at end of input. Throws
  /// ParseError on malformed records (the skipped prefix is still parsed —
  /// a resume cannot silently jump over undecodable input).
  std::uint64_t skip(std::uint64_t batches);

  [[nodiscard]] std::uint64_t batches_skipped() const noexcept {
    return batches_skipped_;
  }

  /// Attaches a fault injector (not owned; null detaches). Each parsed
  /// batch is a "stream.next" fault site: delays stall the read, aborts
  /// throw, and a dropped batch is discarded and replaced with the next
  /// one — delivered batch indices stay contiguous (no downstream holes)
  /// while `first_record` keeps the true global record position, so the
  /// loss is visible as a gap in record numbering, never as a hang.
  void set_fault_injector(util::FaultInjector* injector) noexcept {
    injector_ = injector;
  }

  [[nodiscard]] std::size_t batch_size() const noexcept { return batch_size_; }
  [[nodiscard]] std::uint64_t batches_read() const noexcept {
    return batches_read_;
  }
  [[nodiscard]] std::uint64_t batches_dropped() const noexcept {
    return batches_dropped_;
  }
  [[nodiscard]] std::uint64_t records_read() const noexcept {
    return reader_.records_read();
  }

 private:
  SequenceStreamReader reader_;
  std::size_t batch_size_;
  std::uint64_t batches_read_ = 0;
  std::uint64_t batches_dropped_ = 0;
  std::uint64_t batches_skipped_ = 0;
  util::FaultInjector* injector_ = nullptr;
};

}  // namespace jem::io
