#include "io/paf.hpp"

#include <charconv>
#include <stdexcept>

#include "util/string_util.hpp"

namespace jem::io {

void write_paf(std::ostream& out, const std::vector<PafRecord>& records) {
  for (const PafRecord& rec : records) {
    out << rec.query_name << '\t' << rec.query_length << '\t'
        << rec.query_begin << '\t' << rec.query_end << '\t' << rec.strand
        << '\t' << rec.target_name << '\t' << rec.target_length << '\t'
        << rec.target_begin << '\t' << rec.target_end << '\t' << rec.matches
        << '\t' << rec.alignment_length << '\t' << rec.mapq << '\n';
  }
}

namespace {

std::uint64_t parse_u64(std::string_view field, const char* what) {
  std::uint64_t value{};
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    throw std::runtime_error(std::string("PAF: bad ") + what + " field '" +
                             std::string(field) + "'");
  }
  return value;
}

}  // namespace

std::vector<PafRecord> read_paf(std::istream& in) {
  std::vector<PafRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = util::split(line, '\t');
    if (fields.size() < 12) {
      throw std::runtime_error("PAF: expected >= 12 fields, got " +
                               std::to_string(fields.size()));
    }
    PafRecord rec;
    rec.query_name = std::string(fields[0]);
    rec.query_length = parse_u64(fields[1], "query_length");
    rec.query_begin = parse_u64(fields[2], "query_begin");
    rec.query_end = parse_u64(fields[3], "query_end");
    if (fields[4].size() != 1 ||
        (fields[4][0] != '+' && fields[4][0] != '-')) {
      throw std::runtime_error("PAF: bad strand field '" +
                               std::string(fields[4]) + "'");
    }
    rec.strand = fields[4][0];
    rec.target_name = std::string(fields[5]);
    rec.target_length = parse_u64(fields[6], "target_length");
    rec.target_begin = parse_u64(fields[7], "target_begin");
    rec.target_end = parse_u64(fields[8], "target_end");
    rec.matches = parse_u64(fields[9], "matches");
    rec.alignment_length = parse_u64(fields[10], "alignment_length");
    rec.mapq = static_cast<std::uint32_t>(parse_u64(fields[11], "mapq"));
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace jem::io
