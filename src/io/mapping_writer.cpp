#include "io/mapping_writer.hpp"

#include <charconv>
#include <stdexcept>

#include "util/string_util.hpp"

namespace jem::io {

void write_mappings(std::ostream& out, const std::vector<MappingLine>& lines) {
  for (const MappingLine& line : lines) {
    out << line.query << '\t' << line.end << '\t' << line.segment_length
        << '\t' << (line.mapped() ? line.subject : std::string("*")) << '\t'
        << line.votes << '\t' << line.trials << '\n';
  }
}

namespace {
std::uint32_t parse_u32(std::string_view field, const char* what) {
  std::uint32_t value{};
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    throw std::runtime_error(std::string("mapping file: bad ") + what +
                             " field '" + std::string(field) + "'");
  }
  return value;
}
}  // namespace

std::vector<MappingLine> read_mappings(std::istream& in) {
  std::vector<MappingLine> lines;
  std::string raw;
  while (std::getline(in, raw)) {
    if (raw.empty()) continue;
    const auto fields = util::split(raw, '\t');
    if (fields.size() != 6) {
      throw std::runtime_error("mapping file: expected 6 fields, got " +
                               std::to_string(fields.size()));
    }
    MappingLine line;
    line.query = std::string(fields[0]);
    if (fields[1].size() != 1 ||
        (fields[1][0] != 'P' && fields[1][0] != 'S' && fields[1][0] != 'I')) {
      throw std::runtime_error("mapping file: bad end field '" +
                               std::string(fields[1]) + "'");
    }
    line.end = fields[1][0];
    line.segment_length = parse_u32(fields[2], "segment_length");
    if (fields[3] != "*") line.subject = std::string(fields[3]);
    line.votes = parse_u32(fields[4], "votes");
    line.trials = parse_u32(fields[5], "trials");
    lines.push_back(std::move(line));
  }
  return lines;
}

}  // namespace jem::io
