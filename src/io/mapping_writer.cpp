#include "io/mapping_writer.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace jem::io {

void write_mappings(std::ostream& out, const std::vector<MappingLine>& lines) {
  for (const MappingLine& line : lines) {
    out << line.query << '\t' << line.end << '\t' << line.segment_length
        << '\t' << (line.mapped() ? line.subject : std::string("*")) << '\t'
        << line.votes << '\t' << line.trials << '\n';
  }
}

namespace {
std::uint32_t parse_u32(std::string_view field, const char* what) {
  std::uint32_t value{};
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    throw std::runtime_error(std::string("mapping file: bad ") + what +
                             " field '" + std::string(field) + "'");
  }
  return value;
}
}  // namespace

std::vector<MappingLine> read_mappings(std::istream& in) {
  std::vector<MappingLine> lines;
  std::string raw;
  while (std::getline(in, raw)) {
    if (raw.empty()) continue;
    const auto fields = util::split(raw, '\t');
    if (fields.size() != 6) {
      throw std::runtime_error("mapping file: expected 6 fields, got " +
                               std::to_string(fields.size()));
    }
    MappingLine line;
    line.query = std::string(fields[0]);
    if (fields[1].size() != 1 ||
        (fields[1][0] != 'P' && fields[1][0] != 'S' && fields[1][0] != 'I')) {
      throw std::runtime_error("mapping file: bad end field '" +
                               std::string(fields[1]) + "'");
    }
    line.end = fields[1][0];
    line.segment_length = parse_u32(fields[2], "segment_length");
    if (fields[3] != "*") line.subject = std::string(fields[3]);
    line.votes = parse_u32(fields[4], "votes");
    line.trials = parse_u32(fields[5], "trials");
    lines.push_back(std::move(line));
  }
  return lines;
}

void write_mappings_atomic(const std::string& path,
                           const std::vector<MappingLine>& lines) {
  std::ostringstream out;
  write_mappings(out, lines);
  atomic_write_file(path, std::move(out).str());
}

namespace {

[[noreturn]] void throw_output_io(const std::string& what) {
  throw ArtifactError(ArtifactReason::kIoError,
                      what + ": " + std::strerror(errno));
}

void fsync_parent_dir(const std::string& path) noexcept {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    (void)::fsync(fd);  // best-effort: the rename itself already happened
    ::close(fd);
  }
}

}  // namespace

MappingOutput::MappingOutput(std::string path) : path_(std::move(path)) {
  const std::string partial = partial_path();
  fd_ = ::open(partial.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) throw_output_io("cannot create partial output " + partial);
}

MappingOutput::MappingOutput(std::string path, std::uint64_t bytes,
                             std::uint64_t hash)
    : path_(std::move(path)) {
  const std::string partial = partial_path();
  fd_ = ::open(partial.c_str(), O_RDWR);
  if (fd_ < 0) {
    throw ArtifactError(ArtifactReason::kOpenFailed,
                        "partial output missing for resume: " + partial);
  }
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0 || static_cast<std::uint64_t>(end) < bytes) {
    const std::uint64_t have = end < 0 ? 0 : static_cast<std::uint64_t>(end);
    close_fd();
    throw ArtifactError(ArtifactReason::kStaleJournal,
                        "partial output has " + std::to_string(have) +
                            " bytes, journal claims " + std::to_string(bytes));
  }
  // Everything past the journaled prefix is an un-journaled crash remainder.
  if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0 ||
      ::lseek(fd_, 0, SEEK_SET) < 0) {
    const int err = errno;
    close_fd();
    errno = err;
    throw_output_io("cannot truncate partial output " + partial);
  }
  // Rehash the kept prefix: the journal's digest must reproduce exactly, or
  // the bytes on disk are not the batches the journal says they are.
  char buffer[1 << 16];
  std::uint64_t remaining = bytes;
  while (remaining > 0) {
    const std::size_t want =
        remaining < sizeof(buffer) ? static_cast<std::size_t>(remaining)
                                   : sizeof(buffer);
    const ssize_t n = ::read(fd_, buffer, want);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      close_fd();
      throw ArtifactError(ArtifactReason::kIoError,
                          "cannot rehash partial output " + partial);
    }
    hash_.update({buffer, static_cast<std::size_t>(n)});
    remaining -= static_cast<std::uint64_t>(n);
  }
  // An empty prefix (a run killed before its first journal record) has no
  // recorded digest to compare — the zero-length truncation above already
  // reclaimed every crash remainder byte.
  if (bytes > 0 && hash_.digest() != hash) {
    close_fd();
    throw ArtifactError(
        ArtifactReason::kStaleJournal,
        "partial output prefix digest disagrees with the journal — the "
        "output is not what the journal recorded (corrupt or overwritten)");
  }
  if (::lseek(fd_, static_cast<off_t>(bytes), SEEK_SET) < 0) {
    const int err = errno;
    close_fd();
    errno = err;
    throw_output_io("cannot seek partial output " + partial);
  }
}

MappingOutput::MappingOutput(MappingOutput&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      hash_(other.hash_) {}

MappingOutput& MappingOutput::operator=(MappingOutput&& other) noexcept {
  if (this != &other) {
    close_fd();
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    hash_ = other.hash_;
  }
  return *this;
}

MappingOutput::~MappingOutput() { close_fd(); }

void MappingOutput::close_fd() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void MappingOutput::append(std::string_view bytes) {
  if (fd_ < 0) {
    throw ArtifactError(ArtifactReason::kIoError,
                        "output already published or discarded: " + path_);
  }
  const char* p = bytes.data();
  std::size_t size = bytes.size();
  while (size > 0) {
    const ssize_t n = ::write(fd_, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_output_io("append to partial output " + partial_path());
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  hash_.update(bytes);
}

void MappingOutput::sync() {
  if (fd_ >= 0 && ::fsync(fd_) != 0) {
    throw_output_io("fsync of partial output " + partial_path());
  }
}

std::pair<std::uint64_t, std::uint64_t> MappingOutput::state() const noexcept {
  return {hash_.bytes(), hash_.digest()};
}

std::uint64_t MappingOutput::bytes_written() const noexcept {
  return hash_.bytes();
}

std::uint64_t MappingOutput::digest() const noexcept { return hash_.digest(); }

void MappingOutput::publish() {
  if (fd_ < 0) {
    throw ArtifactError(ArtifactReason::kIoError,
                        "output already published or discarded: " + path_);
  }
  if (::fsync(fd_) != 0) {
    throw_output_io("fsync of partial output " + partial_path());
  }
  close_fd();
  const std::string partial = partial_path();
  if (std::rename(partial.c_str(), path_.c_str()) != 0) {
    throw_output_io("publish rename " + partial + " -> " + path_);
  }
  fsync_parent_dir(path_);
}

void MappingOutput::discard() noexcept {
  if (fd_ < 0 && path_.empty()) return;
  close_fd();
  (void)::unlink(partial_path().c_str());
}

}  // namespace jem::io
