#include "io/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"

namespace jem::io {

namespace {

constexpr std::uint64_t kJournalMagic = 0x3154504b434d454aULL;  // "JEMCKPT1"
constexpr std::uint32_t kJournalVersion = 1;
constexpr std::size_t kHeaderSize = 56;  // magic+version+reserved+fp+checksum
constexpr std::size_t kRecordSize = 40;  // 4 fields + checksum

void append_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void append_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(const char* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint32_t read_u32(const char* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::string encode_header(const JournalFingerprint& fp) {
  std::string out;
  out.reserve(kHeaderSize);
  append_u64(out, kJournalMagic);
  append_u32(out, kJournalVersion);
  append_u32(out, 0);  // reserved
  for (const std::uint64_t word : fp.words) append_u64(out, word);
  append_u64(out, xxh64(out));
  return out;
}

std::string encode_record(const JournalRecord& record) {
  std::string out;
  out.reserve(kRecordSize);
  append_u64(out, record.batch_index);
  append_u64(out, record.records_done);
  append_u64(out, record.output_bytes);
  append_u64(out, record.output_hash);
  append_u64(out, xxh64(out));
  return out;
}

[[noreturn]] void throw_io(const std::string& what) {
  throw ArtifactError(ArtifactReason::kIoError,
                      what + ": " + std::strerror(errno));
}

}  // namespace

ResumePoint read_journal(const std::string& path,
                         const JournalFingerprint& fp) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ArtifactError(ArtifactReason::kOpenFailed,
                        "cannot open journal: " + path);
  }
  std::ostringstream raw;
  raw << in.rdbuf();
  const std::string bytes = std::move(raw).str();

  if (bytes.size() < kHeaderSize) {
    throw ArtifactError(ArtifactReason::kTruncated,
                        "journal shorter than its header (" +
                            std::to_string(bytes.size()) + " bytes)");
  }
  if (read_u64(bytes.data()) != kJournalMagic) {
    throw ArtifactError(ArtifactReason::kBadMagic,
                        "not a JEM run journal: " + path);
  }
  const std::uint32_t version = read_u32(bytes.data() + 8);
  if (version != kJournalVersion) {
    throw ArtifactError(ArtifactReason::kBadVersion,
                        "journal version " + std::to_string(version) +
                            ", expected " + std::to_string(kJournalVersion));
  }
  if (xxh64({bytes.data(), kHeaderSize - 8}) !=
      read_u64(bytes.data() + kHeaderSize - 8)) {
    throw ArtifactError(ArtifactReason::kChecksumMismatch,
                        "journal header fails its checksum");
  }
  JournalFingerprint stored;
  for (std::size_t i = 0; i < stored.words.size(); ++i) {
    stored.words[i] = read_u64(bytes.data() + 16 + 8 * i);
  }
  if (!(stored == fp)) {
    throw ArtifactError(
        ArtifactReason::kStaleJournal,
        "journal fingerprint disagrees with this run's input/params — "
        "refusing to splice results from a different configuration");
  }

  ResumePoint resume;
  std::size_t cursor = kHeaderSize;
  while (cursor < bytes.size()) {
    const std::size_t remaining = bytes.size() - cursor;
    const bool tail_ok =
        remaining >= kRecordSize &&
        xxh64({bytes.data() + cursor, kRecordSize - 8}) ==
            read_u64(bytes.data() + cursor + kRecordSize - 8);
    if (!tail_ok) {
      // A short or checksum-failed *final* record is the expected crash
      // artifact (torn append) and is discarded. The same defect with more
      // bytes after it means the journal body is corrupt.
      if (remaining <= kRecordSize) {
        resume.torn_records = 1;
        break;
      }
      throw ArtifactError(ArtifactReason::kChecksumMismatch,
                          "journal record at byte " + std::to_string(cursor) +
                              " fails its checksum with records after it");
    }
    JournalRecord record;
    record.batch_index = read_u64(bytes.data() + cursor);
    record.records_done = read_u64(bytes.data() + cursor + 8);
    record.output_bytes = read_u64(bytes.data() + cursor + 16);
    record.output_hash = read_u64(bytes.data() + cursor + 24);
    if (record.batch_index != resume.batches_done ||
        record.records_done < resume.records_done ||
        record.output_bytes < resume.output_bytes) {
      throw ArtifactError(ArtifactReason::kStaleJournal,
                          "journal records are not contiguous (batch " +
                              std::to_string(record.batch_index) +
                              " where " +
                              std::to_string(resume.batches_done) +
                              " was expected)");
    }
    resume.batches_done = record.batch_index + 1;
    resume.records_done = record.records_done;
    resume.output_bytes = record.output_bytes;
    resume.output_hash = record.output_hash;
    cursor += kRecordSize;
  }
  return resume;
}

CheckpointWriter::CheckpointWriter(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {}

CheckpointWriter::CheckpointWriter(CheckpointWriter&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      appended_(other.appended_),
      output_state_(std::move(other.output_state_)),
      injector_(other.injector_) {}

CheckpointWriter& CheckpointWriter::operator=(
    CheckpointWriter&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    appended_ = other.appended_;
    output_state_ = std::move(other.output_state_);
    injector_ = other.injector_;
  }
  return *this;
}

CheckpointWriter::~CheckpointWriter() { close(); }

void CheckpointWriter::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

CheckpointWriter CheckpointWriter::create(const std::string& path,
                                          const JournalFingerprint& fp) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_io("cannot create journal " + path);
  CheckpointWriter writer(path, fd);
  const std::string header = encode_header(fp);
  writer.write_all(header.data(), header.size());
  if (::fsync(fd) != 0) throw_io("fsync of journal " + path);
  return writer;
}

CheckpointWriter CheckpointWriter::reopen(const std::string& path,
                                          const JournalFingerprint& fp,
                                          const ResumePoint& resume) {
  // read_journal re-validates so a reopen can never extend a journal that
  // stopped matching this run between validation and reopen.
  const ResumePoint current = read_journal(path, fp);
  if (current.batches_done != resume.batches_done) {
    throw ArtifactError(ArtifactReason::kStaleJournal,
                        "journal changed between validation and reopen");
  }
  const int fd = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd < 0) throw_io("cannot reopen journal " + path);
  const off_t end = static_cast<off_t>(
      kHeaderSize + resume.batches_done * kRecordSize);
  // Drop any torn tail so the next append starts on a record boundary.
  if (::ftruncate(fd, end) != 0 || ::lseek(fd, end, SEEK_SET) < 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_io("cannot truncate journal " + path);
  }
  CheckpointWriter writer(path, fd);
  writer.appended_ = resume.batches_done;
  return writer;
}

void CheckpointWriter::write_all(const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd_, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_io("journal append to " + path_);
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

void CheckpointWriter::append(const JournalRecord& record) {
  if (fd_ < 0) {
    throw ArtifactError(ArtifactReason::kIoError,
                        "journal already closed: " + path_);
  }
  const std::string encoded = encode_record(record);
  if (injector_ != nullptr && injector_->active()) {
    const util::FaultDecision decision = injector_->next("ckpt.write");
    if (decision.action == util::FaultAction::kDelay) {
      std::this_thread::sleep_for(decision.delay);
    } else if (decision.action == util::FaultAction::kDrop) {
      return;  // append lost; journal lags output — resume redoes the batch
    } else if (decision.action == util::FaultAction::kAbort) {
      // Model a crash mid-append: half a record reaches the disk, then the
      // process "dies". Resume must discard this torn tail.
      write_all(encoded.data(), encoded.size() / 2);
      (void)::fsync(fd_);
      throw util::FaultAbort(injector_->rank(), "ckpt.write");
    }
  }
  write_all(encoded.data(), encoded.size());
  if (::fsync(fd_) != 0) throw_io("fsync of journal " + path_);
  ++appended_;
  obs::default_registry().counter("io.checkpoint.appends").add(1);
}

void CheckpointWriter::append_batch(std::uint64_t batch_index,
                                    std::uint64_t records_done) {
  JournalRecord record;
  record.batch_index = batch_index;
  record.records_done = records_done;
  if (output_state_) {
    const auto [bytes, hash] = output_state_();
    record.output_bytes = bytes;
    record.output_hash = hash;
  }
  append(record);
}

void remove_journal(const std::string& path) noexcept {
  (void)::unlink(path.c_str());
}

}  // namespace jem::io
