// Plain sequence record types shared between the readers, the simulators and
// the mappers. Sequences are ASCII (`ACGT` plus optionally `N`); the core
// module owns the 2-bit world.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace jem::io {

/// One FASTA/FASTQ record. `quality` is empty for FASTA.
struct SequenceRecord {
  std::string name;
  std::string comment;  // text after the first whitespace on the header line
  std::string bases;
  std::string quality;

  [[nodiscard]] std::size_t length() const noexcept { return bases.size(); }
};

/// Identifier of a sequence inside a SequenceSet.
using SeqId = std::uint32_t;
inline constexpr SeqId kInvalidSeqId = 0xffffffffu;

}  // namespace jem::io
