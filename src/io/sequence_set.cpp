#include "io/sequence_set.hpp"

#include <cmath>
#include <stdexcept>

namespace jem::io {

SeqId SequenceSet::add(std::string_view name, std::string_view bases) {
  if (names_.size() >= kInvalidSeqId) {
    throw std::length_error("SequenceSet: too many sequences");
  }
  names_.emplace_back(name);
  arena_.append(bases);
  offsets_.push_back(arena_.size());
  return static_cast<SeqId>(names_.size() - 1);
}

void SequenceSet::add_all(std::span<const SequenceRecord> records) {
  for (const SequenceRecord& rec : records) add(rec.name, rec.bases);
}

std::string_view SequenceSet::name(SeqId id) const {
  return names_.at(id);
}

std::string_view SequenceSet::bases(SeqId id) const {
  if (id >= names_.size()) {
    throw std::out_of_range("SequenceSet::bases: bad id");
  }
  const std::uint64_t begin = id == 0 ? 0 : offsets_[id - 1];
  const std::uint64_t end = offsets_[id];
  return std::string_view(arena_).substr(begin, end - begin);
}

std::size_t SequenceSet::length(SeqId id) const {
  if (id >= names_.size()) {
    throw std::out_of_range("SequenceSet::length: bad id");
  }
  const std::uint64_t begin = id == 0 ? 0 : offsets_[id - 1];
  return static_cast<std::size_t>(offsets_[id] - begin);
}

SequenceSet::LengthStats SequenceSet::length_stats() const noexcept {
  LengthStats stats;
  if (names_.empty()) return stats;
  stats.min = length(0);
  stats.max = length(0);
  double sum = 0.0;
  for (SeqId id = 0; id < names_.size(); ++id) {
    const std::size_t len = length(id);
    sum += static_cast<double>(len);
    stats.min = std::min(stats.min, len);
    stats.max = std::max(stats.max, len);
  }
  stats.mean = sum / static_cast<double>(names_.size());
  double ss = 0.0;
  for (SeqId id = 0; id < names_.size(); ++id) {
    const double d = static_cast<double>(length(id)) - stats.mean;
    ss += d * d;
  }
  stats.stddev = std::sqrt(ss / static_cast<double>(names_.size()));
  return stats;
}

SeqId SequenceSet::find(std::string_view name) const noexcept {
  for (SeqId id = 0; id < names_.size(); ++id) {
    if (names_[id] == name) return id;
  }
  return kInvalidSeqId;
}

void SequenceSet::reserve(std::size_t sequences, std::uint64_t bases) {
  names_.reserve(sequences);
  offsets_.reserve(sequences);
  arena_.reserve(bases);
}

}  // namespace jem::io
