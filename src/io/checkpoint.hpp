// Run journal for checkpointed, resumable streaming runs. The MappingEngine
// emits batches in input order (the in-order-emit point of its pipeline);
// with a CheckpointWriter attached, each emitted batch appends one durable
// record:
//
//   { batch_index, records_done, output_bytes, output_hash }
//
// binding "batches [0, batch_index] are fully mapped" to "the first
// output_bytes bytes of the partial output (with prefix digest output_hash)
// contain exactly their results". A run killed at any point — even mid-
// append — resumes by reading the journal, discarding the torn tail record
// (the crash artifact), truncating the partial output back to the last
// durable record's byte offset, fast-forwarding the input stream, and
// continuing into the same output. The final output is byte-identical to an
// uninterrupted run.
//
// The journal is bound to one (input, params, request) combination through
// an opaque 32-byte fingerprint supplied by the caller (core/index_serde
// digests the mapping params; the driver adds input and request digests).
// A journal whose fingerprint disagrees is stale: resuming it would splice
// results computed under different parameters, so every validation failure
// is a structured ArtifactError and the caller falls back to a full re-run.
//
// On-disk layout (little-endian):
//   header: u64 magic "JEMCKPT1", u32 version, u32 reserved,
//           4 x u64 fingerprint, u64 xxh64(preceding 48 bytes)
//   records: { u64 batch_index, u64 records_done, u64 output_bytes,
//              u64 output_hash, u64 xxh64(preceding 32 bytes) }
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "io/artifact.hpp"
#include "util/fault_plan.hpp"

namespace jem::io {

/// Opaque digest binding a journal to one run configuration.
struct JournalFingerprint {
  std::array<std::uint64_t, 4> words{};

  friend bool operator==(const JournalFingerprint&,
                         const JournalFingerprint&) = default;
};

/// One durable batch record (all counters cumulative).
struct JournalRecord {
  std::uint64_t batch_index = 0;   // last batch whose output is durable
  std::uint64_t records_done = 0;  // reads emitted through this batch
  std::uint64_t output_bytes = 0;  // valid prefix of the partial output
  std::uint64_t output_hash = 0;   // XXH64 of that prefix

  friend bool operator==(const JournalRecord&, const JournalRecord&) = default;
};

/// Where a validated journal says the run stopped.
struct ResumePoint {
  std::uint64_t batches_done = 0;   // complete batches (= next batch index)
  std::uint64_t records_done = 0;
  std::uint64_t output_bytes = 0;
  std::uint64_t output_hash = 0;
  std::uint64_t torn_records = 0;   // partial tail records discarded

  [[nodiscard]] bool fresh() const noexcept { return batches_done == 0; }
};

/// Parses and validates a journal against `fp`. A torn tail record (the
/// signature of a crash mid-append) is discarded, not an error. Throws
/// ArtifactError on a missing/foreign/corrupt/stale journal — callers catch
/// it and fall back to a full re-run.
[[nodiscard]] ResumePoint read_journal(const std::string& path,
                                       const JournalFingerprint& fp);

class CheckpointWriter {
 public:
  /// Reports the current (bytes, prefix-digest) of the partial output; set
  /// by the driver that owns the output file. When unset, records carry
  /// zeros (journal still tracks batch/record progress).
  using OutputState = std::function<std::pair<std::uint64_t, std::uint64_t>()>;

  /// Creates (or truncates) the journal and durably writes its header.
  static CheckpointWriter create(const std::string& path,
                                 const JournalFingerprint& fp);

  /// Reopens a journal previously validated by read_journal, truncating any
  /// torn tail so the next append lands on a record boundary.
  static CheckpointWriter reopen(const std::string& path,
                                 const JournalFingerprint& fp,
                                 const ResumePoint& resume);

  CheckpointWriter(CheckpointWriter&& other) noexcept;
  CheckpointWriter& operator=(CheckpointWriter&& other) noexcept;
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;
  ~CheckpointWriter();

  /// Appends one record durably (write + fsync). Throws ArtifactError
  /// (kIoError) on failure and util::FaultAbort when the attached injector
  /// aborts site "ckpt.write" — after tearing a partial record onto disk,
  /// modeling a crash mid-append (resume discards it).
  void append(const JournalRecord& record);

  /// Engine-facing form: fills output_bytes/output_hash from the attached
  /// OutputState provider (zeros without one) and appends.
  void append_batch(std::uint64_t batch_index, std::uint64_t records_done);

  void set_output_state(OutputState provider) {
    output_state_ = std::move(provider);
  }

  /// Attaches a fault injector (not owned; null detaches); every append is
  /// a "ckpt.write" site: delay stalls, drop skips the append (the journal
  /// falls behind — resume redoes the batch), abort tears a partial record
  /// and throws.
  void set_fault_injector(util::FaultInjector* injector) noexcept {
    injector_ = injector;
  }

  [[nodiscard]] std::uint64_t records_appended() const noexcept {
    return appended_;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Closes the file descriptor (idempotent; destructor calls it too).
  void close() noexcept;

 private:
  CheckpointWriter(std::string path, int fd);

  void write_all(const void* data, std::size_t size);

  std::string path_;
  int fd_ = -1;
  std::uint64_t appended_ = 0;
  OutputState output_state_;
  util::FaultInjector* injector_ = nullptr;
};

/// Removes a journal file (best-effort; missing files are fine). Called
/// after a checkpointed run publishes its final output.
void remove_journal(const std::string& path) noexcept;

}  // namespace jem::io
