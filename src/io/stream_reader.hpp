// SequenceStreamReader — incremental FASTA/FASTQ parsing for batch
// processing. The paper's query sets reach 4.4 Gbp; loading them whole
// costs more memory than the sketch table itself. The mapping phase is
// embarrassingly parallel over reads, so the CLI can stream: read a batch,
// map it, emit, discard (jem_map --batch).
//
// Same tolerances as the whole-file readers (multi-line FASTA, CRLF,
// lowercase normalization); same ParseError on malformed records.
#pragma once

#include <istream>
#include <string>

#include "io/fasta.hpp"
#include "io/sequence.hpp"
#include "io/sequence_set.hpp"

namespace jem::io {

class SequenceStreamReader {
 public:
  /// The stream must outlive the reader. Format is detected from the first
  /// non-blank byte.
  explicit SequenceStreamReader(std::istream& in);

  /// Parses the next record into `record` (contents overwritten). Returns
  /// false at end of input. Throws ParseError on malformed input.
  [[nodiscard]] bool next(SequenceRecord& record);

  /// Reads up to `max_records` records into a fresh SequenceSet; an empty
  /// set signals end of input.
  [[nodiscard]] SequenceSet next_batch(std::size_t max_records);

  /// Records returned so far.
  [[nodiscard]] std::uint64_t records_read() const noexcept {
    return records_read_;
  }

 private:
  enum class Format { kUnknown, kFasta, kFastq, kEmpty };

  void detect_format();
  [[nodiscard]] bool get_line(std::string& line);

  std::istream& in_;
  Format format_ = Format::kUnknown;
  std::string pending_header_;  // FASTA: the next record's header line
  bool has_pending_header_ = false;
  std::uint64_t records_read_ = 0;
};

}  // namespace jem::io
