// Versioned, checksummed binary artifact container — the on-disk framing
// shared by the persistent sketch index (core/index_serde) and the run
// journal (io/checkpoint). The design follows minimap2's .mmi lesson: a
// sketch mapper becomes operable at scale once its index is a reusable,
// integrity-checked file instead of a per-run rebuild.
//
// Layout (little-endian throughout):
//
//   u64 magic            per-artifact-kind magic ("JEMARTF1" container)
//   u32 format_version
//   u32 section_count
//   section_count x {
//     u64 tag            8-byte section name, NUL-padded ("PARAMS\0\0")
//     u64 payload_size
//     u64 xxh64(payload)
//     payload bytes
//   }
//
// Every load path classifies what went wrong: a truncated file, a flipped
// bit, a foreign magic, an incompatible version — each is a structured
// ArtifactError (never UB, never a silently wrong answer), so callers can
// degrade gracefully (rebuild the index, restart the run) and say why.
//
// Publication is atomic: atomic_write_file writes to a temp file in the
// destination directory, fsyncs, then renames over the target — a reader
// never observes a half-written artifact, and a crash mid-write leaves the
// previous version intact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace jem::io {

/// XXH64 (Collet) one-shot digest — the per-section checksum. Dependency-
/// free reimplementation of the reference algorithm; digests match xxhash.
[[nodiscard]] std::uint64_t xxh64(std::string_view data,
                                  std::uint64_t seed = 0) noexcept;

/// Streaming XXH64 state: update() in arbitrary chunks, digest() at any
/// point. Used by the checkpointed output writer, which must track the
/// digest of an append-only file prefix without rereading it per batch.
class Xxh64Stream {
 public:
  explicit Xxh64Stream(std::uint64_t seed = 0) noexcept;

  void update(std::string_view data) noexcept;
  [[nodiscard]] std::uint64_t digest() const noexcept;
  [[nodiscard]] std::uint64_t bytes() const noexcept { return total_; }

 private:
  std::uint64_t acc_[4];
  unsigned char buffer_[32];
  std::size_t buffered_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t seed_ = 0;
};

/// Why an artifact could not be used. Every reader failure is one of these
/// — callers switch on reason() to pick a fallback (rebuild, re-run).
enum class ArtifactReason {
  kOpenFailed,        // file missing or unreadable
  kBadMagic,          // not this kind of artifact at all
  kBadVersion,        // recognized but incompatible format version
  kTruncated,         // file ends mid-header or mid-section
  kChecksumMismatch,  // a section's payload fails its XXH64 (bit rot)
  kBadSection,        // required section missing or malformed payload
  kParamsMismatch,    // fingerprint disagrees with the requesting run
  kStaleJournal,      // journal inconsistent with its input/output state
  kIoError,           // write/fsync/rename failure during publish
};

/// Human-readable name of a reason ("truncated", "checksum-mismatch", ...).
[[nodiscard]] std::string_view artifact_reason_name(
    ArtifactReason reason) noexcept;

class ArtifactError : public std::runtime_error {
 public:
  ArtifactError(ArtifactReason reason, std::string detail)
      : std::runtime_error(std::string(artifact_reason_name(reason)) + ": " +
                           detail),
        reason_(reason) {}

  [[nodiscard]] ArtifactReason reason() const noexcept { return reason_; }

 private:
  ArtifactReason reason_;
};

/// Accumulates named sections and serializes the framed container.
class ArtifactWriter {
 public:
  /// `magic` identifies the artifact kind; `version` its format revision.
  ArtifactWriter(std::uint64_t magic, std::uint32_t version)
      : magic_(magic), version_(version) {}

  /// Appends one section. `tag` must be 1..8 bytes; payload is copied.
  void add_section(std::string_view tag, std::span<const std::byte> payload);
  void add_section(std::string_view tag, std::string_view payload);

  /// Serializes header + all sections (checksums computed here).
  [[nodiscard]] std::string serialize() const;

  /// serialize() + atomic_write_file in one step.
  void save(const std::string& path) const;

 private:
  struct Section {
    std::uint64_t tag;
    std::string payload;
  };
  std::uint64_t magic_;
  std::uint32_t version_;
  std::vector<Section> sections_;
};

/// Parses and integrity-checks a framed container. The reader keeps a copy
/// of the bytes; section() spans stay valid for the reader's lifetime.
class ArtifactReader {
 public:
  /// Parses `bytes`, verifying magic, version, framing and every section
  /// checksum. Throws ArtifactError on any defect.
  ArtifactReader(std::string bytes, std::uint64_t expected_magic,
                 std::uint32_t expected_version);

  /// Reads the file at `path` (throws kOpenFailed) and parses it.
  [[nodiscard]] static ArtifactReader open(const std::string& path,
                                           std::uint64_t expected_magic,
                                           std::uint32_t expected_version);

  [[nodiscard]] bool has_section(std::string_view tag) const noexcept;

  /// The payload of section `tag`; throws kBadSection when absent.
  [[nodiscard]] std::string_view section(std::string_view tag) const;

  /// section() that also requires an exact payload size (fixed-layout
  /// sections); throws kBadSection on a size mismatch.
  [[nodiscard]] std::string_view section(std::string_view tag,
                                         std::size_t expected_size) const;

  [[nodiscard]] std::size_t section_count() const noexcept {
    return sections_.size();
  }

 private:
  struct Entry {
    std::uint64_t tag;
    std::size_t offset;
    std::size_t size;
  };
  std::string bytes_;
  std::vector<Entry> sections_;
};

/// Encodes a 1..8-byte tag as the u64 the container stores.
[[nodiscard]] std::uint64_t artifact_tag(std::string_view tag);

/// Durable atomic publish: writes `bytes` to `<path>.tmp.<pid>` in the
/// target directory, fsyncs the file, renames it over `path`, then fsyncs
/// the directory. Throws ArtifactError(kIoError) on failure (the temp file
/// is removed best-effort).
void atomic_write_file(const std::string& path, std::string_view bytes);

}  // namespace jem::io
