// PAF (Pairwise mApping Format) records — the de-facto standard output of
// long-read mappers (introduced by minimap). The positional comparators
// (MinimapLikeMapper, MashmapLikeMapper) emit PAF for downstream tools;
// JEM-mapper itself reports best-hit contigs without coordinates, matching
// the paper's tool, so it keeps its TSV format.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace jem::io {

struct PafRecord {
  std::string query_name;
  std::uint64_t query_length = 0;
  std::uint64_t query_begin = 0;  // 0-based, half-open
  std::uint64_t query_end = 0;
  char strand = '+';  // '+' or '-'
  std::string target_name;
  std::uint64_t target_length = 0;
  std::uint64_t target_begin = 0;
  std::uint64_t target_end = 0;
  std::uint64_t matches = 0;        // residue matches
  std::uint64_t alignment_length = 0;  // alignment block length
  std::uint32_t mapq = 0;           // 0..255, 255 = missing

  friend bool operator==(const PafRecord&, const PafRecord&) = default;
};

void write_paf(std::ostream& out, const std::vector<PafRecord>& records);

/// Parses PAF; tolerates (and ignores) optional SAM-style tag columns.
/// Throws std::runtime_error on malformed mandatory columns.
[[nodiscard]] std::vector<PafRecord> read_paf(std::istream& in);

}  // namespace jem::io
