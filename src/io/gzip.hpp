// Minimal gzip (RFC 1952) support via zlib: real long-read data ships as
// .fastq.gz, so the readers transparently accept gzip-compressed files.
#pragma once

#include <string>
#include <string_view>

namespace jem::io {

/// True if the buffer starts with the gzip magic bytes (0x1f 0x8b).
[[nodiscard]] bool is_gzip(std::string_view data) noexcept;

/// Inflates a whole gzip stream. Throws std::runtime_error on corrupt input.
[[nodiscard]] std::string gzip_decompress(std::string_view data);

/// Deflates to a gzip stream (used by tests and the demo writers).
[[nodiscard]] std::string gzip_compress(std::string_view data,
                                        int level = 6);

/// Reads a whole file; transparently decompresses when gzip-compressed.
/// Throws std::runtime_error when the file cannot be opened.
[[nodiscard]] std::string read_file_auto(const std::string& path);

}  // namespace jem::io
