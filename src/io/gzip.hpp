// Minimal gzip (RFC 1952) support via zlib: real long-read data ships as
// .fastq.gz, so the readers transparently accept gzip-compressed files.
//
// Decompression is integrity-checked end to end: zlib verifies each
// member's trailer (CRC32 of the uncompressed bytes + ISIZE), and every
// defect — a truncated stream, a corrupt deflate block, a trailer whose
// CRC or length disagrees, bytes after the last member that are not
// another gzip member — surfaces as a structured GzipError naming what
// went wrong, never as silently short or wrong output. Multi-member files
// (concatenated .gz, as produced by `cat a.gz b.gz` and bgzip-like tools)
// decode to the concatenation of their members, matching gzip(1).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace jem::io {

/// Why a gzip stream could not be decoded.
enum class GzipReason {
  kInitFailed,       // zlib could not allocate an inflate state
  kTruncated,        // input ends mid-member (missing data or trailer)
  kBadData,          // corrupt deflate block / bad gzip header
  kBadCrc,           // member trailer CRC32 disagrees with the output
  kBadLength,        // member trailer ISIZE disagrees with the output
  kTrailingGarbage,  // bytes after the final member are not a gzip member
};

/// Human-readable name of a reason ("truncated", "bad-crc", ...).
[[nodiscard]] std::string_view gzip_reason_name(GzipReason reason) noexcept;

class GzipError : public std::runtime_error {
 public:
  GzipError(GzipReason reason, std::string detail)
      : std::runtime_error(std::string("gzip ") +
                           std::string(gzip_reason_name(reason)) + ": " +
                           detail),
        reason_(reason) {}

  [[nodiscard]] GzipReason reason() const noexcept { return reason_; }

 private:
  GzipReason reason_;
};

/// True if the buffer starts with the gzip magic bytes (0x1f 0x8b).
[[nodiscard]] bool is_gzip(std::string_view data) noexcept;

/// Inflates a whole gzip stream (all members of a multi-member file).
/// Throws GzipError on any defect; see the file header for the taxonomy.
[[nodiscard]] std::string gzip_decompress(std::string_view data);

/// Deflates to a gzip stream (used by tests and the demo writers).
[[nodiscard]] std::string gzip_compress(std::string_view data,
                                        int level = 6);

/// Reads a whole file; transparently decompresses when gzip-compressed.
/// Throws std::runtime_error when the file cannot be opened and GzipError
/// when it is gzip but corrupt.
[[nodiscard]] std::string read_file_auto(const std::string& path);

}  // namespace jem::io
