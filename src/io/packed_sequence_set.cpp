#include "io/packed_sequence_set.hpp"

#include <algorithm>
#include <stdexcept>

namespace jem::io {

namespace {

// Local 2-bit codec (io must not depend on core): A=0 C=1 G=2 T=3.
constexpr std::uint8_t kBad = 0xff;

constexpr std::uint8_t pack_code(char base) noexcept {
  switch (base) {
    case 'A': case 'a': return 0;
    case 'C': case 'c': return 1;
    case 'G': case 'g': return 2;
    case 'T': case 't': return 3;
    default: return kBad;
  }
}

constexpr char unpack_code(std::uint8_t code) noexcept {
  constexpr char kBases[4] = {'A', 'C', 'G', 'T'};
  return kBases[code & 3u];
}

}  // namespace

SeqId PackedSequenceSet::add(std::string_view name, std::string_view bases) {
  if (names_.size() >= kInvalidSeqId) {
    throw std::length_error("PackedSequenceSet: too many sequences");
  }
  Meta meta;
  meta.word_offset = words_.size();
  meta.length = bases.size();
  meta.n_offset = n_positions_.size();

  std::uint64_t word = 0;
  int filled = 0;
  for (std::size_t i = 0; i < bases.size(); ++i) {
    std::uint8_t code = pack_code(bases[i]);
    if (code == kBad) {
      n_positions_.push_back(i);
      ++meta.n_count;
      code = 0;  // placeholder bits under the exception
    }
    word |= static_cast<std::uint64_t>(code) << (2 * filled);
    if (++filled == 32) {
      words_.push_back(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) words_.push_back(word);

  names_.emplace_back(name);
  meta_.push_back(meta);
  total_bases_ += bases.size();
  return static_cast<SeqId>(names_.size() - 1);
}

std::string_view PackedSequenceSet::name(SeqId id) const {
  return names_.at(id);
}

std::size_t PackedSequenceSet::length(SeqId id) const {
  if (id >= meta_.size()) {
    throw std::out_of_range("PackedSequenceSet::length: bad id");
  }
  return static_cast<std::size_t>(meta_[id].length);
}

std::string PackedSequenceSet::decode(SeqId id) const {
  return decode(id, 0, length(id));
}

std::string PackedSequenceSet::decode(SeqId id, std::size_t begin,
                                      std::size_t count) const {
  if (id >= meta_.size()) {
    throw std::out_of_range("PackedSequenceSet::decode: bad id");
  }
  const Meta& meta = meta_[id];
  if (begin > meta.length) begin = static_cast<std::size_t>(meta.length);
  count = std::min<std::size_t>(count,
                                static_cast<std::size_t>(meta.length) - begin);

  std::string out(count, 'A');
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t pos = begin + i;
    const std::uint64_t word = words_[meta.word_offset + pos / 32];
    const auto code =
        static_cast<std::uint8_t>((word >> (2 * (pos % 32))) & 3u);
    out[i] = unpack_code(code);
  }

  // Restore exception positions intersecting [begin, begin + count).
  const auto n_begin = n_positions_.begin() +
                       static_cast<std::ptrdiff_t>(meta.n_offset);
  const auto n_end = n_begin + static_cast<std::ptrdiff_t>(meta.n_count);
  for (auto it = std::lower_bound(n_begin, n_end, begin);
       it != n_end && *it < begin + count; ++it) {
    out[static_cast<std::size_t>(*it - begin)] = 'N';
  }
  return out;
}

std::size_t PackedSequenceSet::payload_bytes() const noexcept {
  return words_.size() * sizeof(std::uint64_t) +
         n_positions_.size() * sizeof(std::uint64_t);
}

PackedSequenceSet PackedSequenceSet::from_sequence_set(
    const SequenceSet& set) {
  PackedSequenceSet packed;
  for (SeqId id = 0; id < set.size(); ++id) {
    packed.add(set.name(id), set.bases(id));
  }
  return packed;
}

SequenceSet PackedSequenceSet::to_sequence_set() const {
  SequenceSet set;
  set.reserve(size(), total_bases_);
  for (SeqId id = 0; id < size(); ++id) {
    set.add(name(id), decode(id));
  }
  return set;
}

}  // namespace jem::io
