#include "io/fasta.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "io/gzip.hpp"
#include "util/string_util.hpp"

namespace jem::io {

namespace {

/// getline that also strips a trailing '\r' (CRLF input).
bool get_logical_line(std::istream& in, std::string& line) {
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

void split_header(std::string_view header, SequenceRecord& rec) {
  const std::size_t ws = header.find_first_of(" \t");
  if (ws == std::string_view::npos) {
    rec.name = std::string(header);
  } else {
    rec.name = std::string(header.substr(0, ws));
    rec.comment = std::string(util::trim(header.substr(ws + 1)));
  }
}

void append_bases(std::string& dst, std::string_view line) {
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
    dst.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
}

}  // namespace

std::vector<SequenceRecord> read_fasta(std::istream& in) {
  std::vector<SequenceRecord> records;
  std::string line;
  SequenceRecord current;
  bool in_record = false;

  while (get_logical_line(in, line)) {
    if (line.empty()) continue;
    if (line.front() == '>') {
      if (in_record) {
        if (current.bases.empty()) {
          throw ParseError("FASTA record '" + current.name +
                           "' has no sequence");
        }
        records.push_back(std::move(current));
        current = {};
      }
      split_header(std::string_view(line).substr(1), current);
      if (current.name.empty()) {
        throw ParseError("FASTA header with empty sequence name");
      }
      in_record = true;
    } else {
      if (!in_record) {
        throw ParseError("FASTA input does not start with '>'");
      }
      append_bases(current.bases, line);
    }
  }
  if (in_record) {
    if (current.bases.empty()) {
      throw ParseError("FASTA record '" + current.name + "' has no sequence");
    }
    records.push_back(std::move(current));
  }
  return records;
}

std::vector<SequenceRecord> read_fastq(std::istream& in) {
  std::vector<SequenceRecord> records;
  std::string line;
  while (true) {
    // Skip blank separator lines between records.
    bool got = false;
    while ((got = get_logical_line(in, line)) && line.empty()) {
    }
    if (!got) break;

    if (line.front() != '@') {
      throw ParseError("FASTQ record does not start with '@': " + line);
    }
    SequenceRecord rec;
    split_header(std::string_view(line).substr(1), rec);
    if (rec.name.empty()) {
      throw ParseError("FASTQ header with empty sequence name");
    }

    if (!get_logical_line(in, line)) {
      throw ParseError("FASTQ record '" + rec.name + "' truncated (no bases)");
    }
    append_bases(rec.bases, line);

    if (!get_logical_line(in, line) || line.empty() || line.front() != '+') {
      throw ParseError("FASTQ record '" + rec.name + "' missing '+' line");
    }
    if (!get_logical_line(in, line)) {
      throw ParseError("FASTQ record '" + rec.name +
                       "' truncated (no quality)");
    }
    rec.quality = line;
    if (rec.quality.size() != rec.bases.size()) {
      throw ParseError("FASTQ record '" + rec.name +
                       "': quality length != sequence length");
    }
    records.push_back(std::move(rec));
  }
  return records;
}

std::vector<SequenceRecord> read_sequences(std::istream& in) {
  // Peek past leading whitespace to find the format marker.
  int c = in.peek();
  while (c != std::char_traits<char>::eof() &&
         std::isspace(static_cast<unsigned char>(c)) != 0) {
    in.get();
    c = in.peek();
  }
  if (c == std::char_traits<char>::eof()) return {};
  if (c == '>') return read_fasta(in);
  if (c == '@') return read_fastq(in);
  throw ParseError("input is neither FASTA ('>') nor FASTQ ('@')");
}

std::vector<SequenceRecord> read_sequences_file(const std::string& path) {
  // Transparently accepts gzip-compressed files (.fa.gz / .fastq.gz).
  std::string content;
  try {
    content = read_file_auto(path);
  } catch (const std::exception& error) {
    throw ParseError(error.what());
  }
  std::istringstream in(std::move(content));
  return read_sequences(in);
}

void load_into(const std::string& path, SequenceSet& out) {
  const auto records = read_sequences_file(path);
  for (const SequenceRecord& rec : records) out.add(rec.name, rec.bases);
}

namespace {
void write_wrapped(std::ostream& out, std::string_view bases,
                   std::size_t line_width) {
  if (line_width == 0) {
    out << bases << '\n';
    return;
  }
  for (std::size_t pos = 0; pos < bases.size(); pos += line_width) {
    out << bases.substr(pos, line_width) << '\n';
  }
}
}  // namespace

void write_fasta(std::ostream& out, std::span<const SequenceRecord> records,
                 std::size_t line_width) {
  for (const SequenceRecord& rec : records) {
    out << '>' << rec.name;
    if (!rec.comment.empty()) out << ' ' << rec.comment;
    out << '\n';
    write_wrapped(out, rec.bases, line_width);
  }
}

void write_fasta(std::ostream& out, const SequenceSet& set,
                 std::size_t line_width) {
  for (SeqId id = 0; id < set.size(); ++id) {
    out << '>' << set.name(id) << '\n';
    write_wrapped(out, set.bases(id), line_width);
  }
}

void write_fasta_file(const std::string& path,
                      std::span<const SequenceRecord> records,
                      std::size_t line_width) {
  std::ofstream out(path);
  if (!out) throw ParseError("cannot open file for writing: " + path);
  write_fasta(out, records, line_width);
}

void write_fastq(std::ostream& out, std::span<const SequenceRecord> records) {
  for (const SequenceRecord& rec : records) {
    out << '@' << rec.name;
    if (!rec.comment.empty()) out << ' ' << rec.comment;
    out << '\n' << rec.bases << "\n+\n";
    if (rec.quality.size() == rec.bases.size()) {
      out << rec.quality << '\n';
    } else {
      out << std::string(rec.bases.size(), 'I') << '\n';
    }
  }
}

}  // namespace jem::io
