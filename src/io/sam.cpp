#include "io/sam.hpp"

namespace jem::io {

void write_sam_header(std::ostream& out, const SequenceSet& references,
                      std::string_view program) {
  out << "@HD\tVN:1.6\tSO:unknown\n";
  for (SeqId id = 0; id < references.size(); ++id) {
    out << "@SQ\tSN:" << references.name(id) << "\tLN:"
        << references.length(id) << '\n';
  }
  out << "@PG\tID:" << program << "\tPN:" << program << '\n';
}

void write_sam_records(std::ostream& out,
                       const std::vector<SamRecord>& records) {
  for (const SamRecord& rec : records) {
    out << rec.qname << '\t' << rec.flag << '\t' << rec.rname << '\t'
        << rec.pos << '\t' << rec.mapq << '\t' << rec.cigar
        << "\t*\t0\t0\t" << rec.seq << "\t*\n";
  }
}

}  // namespace jem::io
