#include "io/gzip.hpp"

#include <zlib.h>

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace jem::io {

bool is_gzip(std::string_view data) noexcept {
  return data.size() >= 2 && static_cast<unsigned char>(data[0]) == 0x1f &&
         static_cast<unsigned char>(data[1]) == 0x8b;
}

std::string gzip_decompress(std::string_view data) {
  z_stream stream{};
  // 15 window bits + 16 selects gzip decoding.
  if (inflateInit2(&stream, 15 + 16) != Z_OK) {
    throw std::runtime_error("gzip: inflateInit2 failed");
  }

  std::string out;
  std::string buffer(1 << 16, '\0');
  stream.next_in =
      reinterpret_cast<Bytef*>(const_cast<char*>(data.data()));
  stream.avail_in = static_cast<uInt>(data.size());

  int rc = Z_OK;
  do {
    stream.next_out = reinterpret_cast<Bytef*>(buffer.data());
    stream.avail_out = static_cast<uInt>(buffer.size());
    rc = inflate(&stream, Z_NO_FLUSH);
    if (rc != Z_OK && rc != Z_STREAM_END) {
      inflateEnd(&stream);
      throw std::runtime_error("gzip: corrupt stream (inflate rc=" +
                               std::to_string(rc) + ")");
    }
    out.append(buffer.data(), buffer.size() - stream.avail_out);
  } while (rc != Z_STREAM_END);

  inflateEnd(&stream);
  return out;
}

std::string gzip_compress(std::string_view data, int level) {
  z_stream stream{};
  if (deflateInit2(&stream, level, Z_DEFLATED, 15 + 16, 8,
                   Z_DEFAULT_STRATEGY) != Z_OK) {
    throw std::runtime_error("gzip: deflateInit2 failed");
  }

  std::string out;
  std::string buffer(1 << 16, '\0');
  stream.next_in =
      reinterpret_cast<Bytef*>(const_cast<char*>(data.data()));
  stream.avail_in = static_cast<uInt>(data.size());

  int rc = Z_OK;
  do {
    stream.next_out = reinterpret_cast<Bytef*>(buffer.data());
    stream.avail_out = static_cast<uInt>(buffer.size());
    rc = deflate(&stream, Z_FINISH);
    if (rc == Z_STREAM_ERROR) {
      deflateEnd(&stream);
      throw std::runtime_error("gzip: deflate failed");
    }
    out.append(buffer.data(), buffer.size() - stream.avail_out);
  } while (rc != Z_STREAM_END);

  deflateEnd(&stream);
  return out;
}

std::string read_file_auto(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open file: " + path);
  std::ostringstream raw;
  raw << in.rdbuf();
  std::string data = std::move(raw).str();
  if (is_gzip(data)) return gzip_decompress(data);
  return data;
}

}  // namespace jem::io
