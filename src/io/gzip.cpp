#include "io/gzip.hpp"

#include <zlib.h>

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace jem::io {

std::string_view gzip_reason_name(GzipReason reason) noexcept {
  switch (reason) {
    case GzipReason::kInitFailed: return "init-failed";
    case GzipReason::kTruncated: return "truncated";
    case GzipReason::kBadData: return "bad-data";
    case GzipReason::kBadCrc: return "bad-crc";
    case GzipReason::kBadLength: return "bad-length";
    case GzipReason::kTrailingGarbage: return "trailing-garbage";
  }
  return "unknown";
}

bool is_gzip(std::string_view data) noexcept {
  return data.size() >= 2 && static_cast<unsigned char>(data[0]) == 0x1f &&
         static_cast<unsigned char>(data[1]) == 0x8b;
}

namespace {

/// zlib reports trailer failures as Z_DATA_ERROR with a fixed msg string —
/// the only channel that distinguishes a corrupt deflate block from a
/// CRC32 or ISIZE mismatch in the member trailer.
GzipReason classify_data_error(const char* msg) noexcept {
  const std::string_view text = msg == nullptr ? "" : msg;
  if (text == "incorrect data check") return GzipReason::kBadCrc;
  if (text == "incorrect length check") return GzipReason::kBadLength;
  return GzipReason::kBadData;
}

}  // namespace

std::string gzip_decompress(std::string_view data) {
  z_stream stream{};
  // 15 window bits + 16 selects gzip decoding (zlib then verifies each
  // member's CRC32 + ISIZE trailer against the inflated bytes).
  if (inflateInit2(&stream, 15 + 16) != Z_OK) {
    throw GzipError(GzipReason::kInitFailed, "inflateInit2 failed");
  }

  std::string out;
  std::string buffer(1 << 16, '\0');
  stream.next_in =
      reinterpret_cast<Bytef*>(const_cast<char*>(data.data()));
  stream.avail_in = static_cast<uInt>(data.size());

  // Outer loop: one iteration per gzip member (`cat a.gz b.gz` decodes to
  // the concatenation, as gzip(1) does).
  for (;;) {
    int rc = Z_OK;
    do {
      stream.next_out = reinterpret_cast<Bytef*>(buffer.data());
      stream.avail_out = static_cast<uInt>(buffer.size());
      rc = inflate(&stream, Z_NO_FLUSH);
      if (rc == Z_DATA_ERROR) {
        const GzipReason reason = classify_data_error(stream.msg);
        const std::string detail =
            stream.msg != nullptr ? stream.msg : "corrupt deflate stream";
        inflateEnd(&stream);
        throw GzipError(reason, detail);
      }
      if (rc != Z_OK && rc != Z_STREAM_END && rc != Z_BUF_ERROR) {
        inflateEnd(&stream);
        throw GzipError(GzipReason::kBadData,
                        "inflate rc=" + std::to_string(rc));
      }
      out.append(buffer.data(), buffer.size() - stream.avail_out);
      // All input consumed without reaching the member's end: the file was
      // cut off mid-member (a crash or partial download).
      if (rc != Z_STREAM_END && stream.avail_in == 0) {
        inflateEnd(&stream);
        throw GzipError(GzipReason::kTruncated,
                        "input ends mid-member after " +
                            std::to_string(out.size()) + " bytes of output");
      }
    } while (rc != Z_STREAM_END);

    if (stream.avail_in == 0) break;  // clean end of the last member
    const std::string_view rest(
        reinterpret_cast<const char*>(stream.next_in), stream.avail_in);
    if (!is_gzip(rest)) {
      const std::size_t extra = rest.size();
      inflateEnd(&stream);
      throw GzipError(GzipReason::kTrailingGarbage,
                      std::to_string(extra) +
                          " bytes after the final gzip member");
    }
    if (inflateReset(&stream) != Z_OK) {
      inflateEnd(&stream);
      throw GzipError(GzipReason::kInitFailed, "inflateReset failed");
    }
  }

  inflateEnd(&stream);
  obs::Registry& registry = obs::default_registry();
  registry.counter("io.gzip.streams").add(1);
  registry.counter("io.gzip.in_bytes", obs::Unit::kBytes).add(data.size());
  registry.counter("io.gzip.out_bytes", obs::Unit::kBytes).add(out.size());
  return out;
}

std::string gzip_compress(std::string_view data, int level) {
  z_stream stream{};
  if (deflateInit2(&stream, level, Z_DEFLATED, 15 + 16, 8,
                   Z_DEFAULT_STRATEGY) != Z_OK) {
    throw std::runtime_error("gzip: deflateInit2 failed");
  }

  std::string out;
  std::string buffer(1 << 16, '\0');
  stream.next_in =
      reinterpret_cast<Bytef*>(const_cast<char*>(data.data()));
  stream.avail_in = static_cast<uInt>(data.size());

  int rc = Z_OK;
  do {
    stream.next_out = reinterpret_cast<Bytef*>(buffer.data());
    stream.avail_out = static_cast<uInt>(buffer.size());
    rc = deflate(&stream, Z_FINISH);
    if (rc == Z_STREAM_ERROR) {
      deflateEnd(&stream);
      throw std::runtime_error("gzip: deflate failed");
    }
    out.append(buffer.data(), buffer.size() - stream.avail_out);
  } while (rc != Z_STREAM_END);

  deflateEnd(&stream);
  return out;
}

std::string read_file_auto(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open file: " + path);
  std::ostringstream raw;
  raw << in.rdbuf();
  std::string data = std::move(raw).str();
  obs::Registry& registry = obs::default_registry();
  registry.counter("io.file.reads").add(1);
  registry.counter("io.file.bytes", obs::Unit::kBytes).add(data.size());
  if (is_gzip(data)) return gzip_decompress(data);
  return data;
}

}  // namespace jem::io
