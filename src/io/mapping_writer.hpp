// Tab-separated mapping output, a PAF-flavoured record per mapped query end:
//   query_name  end(P|S)  segment_len  contig_name  votes  trials
// plus a reader for round-tripping in tests and downstream tools.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace jem::io {

struct MappingLine {
  std::string query;
  char end = 'P';  // 'P' prefix segment, 'S' suffix segment
  std::uint32_t segment_length = 0;
  std::string subject;     // empty when unmapped (written as '*')
  std::uint32_t votes = 0;  // trials that voted for the winning subject
  std::uint32_t trials = 0;

  [[nodiscard]] bool mapped() const noexcept { return !subject.empty(); }
  friend bool operator==(const MappingLine&, const MappingLine&) = default;
};

void write_mappings(std::ostream& out, const std::vector<MappingLine>& lines);
[[nodiscard]] std::vector<MappingLine> read_mappings(std::istream& in);

}  // namespace jem::io
