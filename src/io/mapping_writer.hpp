// Tab-separated mapping output, a PAF-flavoured record per mapped query end:
//   query_name  end(P|S)  segment_len  contig_name  votes  trials
// plus a reader for round-tripping in tests and downstream tools, and the
// crash-safe output paths (docs/persistence.md):
//  * write_mappings_atomic — one-shot results published via temp + fsync +
//    rename, so a crash mid-write never leaves a half-written result file;
//  * MappingOutput — an append-only `<path>.partial` staging file for
//    checkpointed streaming runs. It tracks (bytes written, XXH64 prefix
//    digest) — exactly the output state the run journal records per batch —
//    supports reopening at a journal's resume point (truncate + rehash +
//    verify), and publishes atomically on completion. Readers of `path`
//    never observe a partial result; the .partial file is the only
//    crash-visible artifact and a resume or fresh run reclaims it.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "io/artifact.hpp"

namespace jem::io {

struct MappingLine {
  std::string query;
  char end = 'P';  // 'P' prefix segment, 'S' suffix segment
  std::uint32_t segment_length = 0;
  std::string subject;     // empty when unmapped (written as '*')
  std::uint32_t votes = 0;  // trials that voted for the winning subject
  std::uint32_t trials = 0;

  [[nodiscard]] bool mapped() const noexcept { return !subject.empty(); }
  friend bool operator==(const MappingLine&, const MappingLine&) = default;
};

void write_mappings(std::ostream& out, const std::vector<MappingLine>& lines);
[[nodiscard]] std::vector<MappingLine> read_mappings(std::istream& in);

/// write_mappings serialized to memory, then published with
/// atomic_write_file (temp + fsync + rename): the file at `path` is always
/// either the previous version or the complete new one.
void write_mappings_atomic(const std::string& path,
                           const std::vector<MappingLine>& lines);

/// Append-only staging output for checkpointed streaming runs; the partial
/// file lives at `path() + ".partial"` until publish().
class MappingOutput {
 public:
  /// Fresh run: creates/truncates the partial file.
  explicit MappingOutput(std::string path);

  /// Resume: reopens the partial file, truncates it to `bytes` (everything
  /// past the last journaled batch is an un-journaled crash remainder),
  /// rehashes the kept prefix and requires it to equal `hash`. A mismatch
  /// means the partial output does not contain what the journal claims —
  /// thrown as ArtifactError(kStaleJournal); callers fall back to a full
  /// re-run. kOpenFailed when the partial file is gone.
  MappingOutput(std::string path, std::uint64_t bytes, std::uint64_t hash);

  MappingOutput(MappingOutput&& other) noexcept;
  MappingOutput& operator=(MappingOutput&& other) noexcept;
  MappingOutput(const MappingOutput&) = delete;
  MappingOutput& operator=(const MappingOutput&) = delete;
  ~MappingOutput();

  /// Appends bytes to the partial file and folds them into the prefix
  /// digest. Throws ArtifactError(kIoError) on a short write.
  void append(std::string_view bytes);

  /// fsync the partial file — called before each journal append so the
  /// journal never claims bytes the disk does not have.
  void sync();

  /// Current (bytes, prefix digest) — the CheckpointWriter::OutputState
  /// provider for this output.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> state() const noexcept;

  [[nodiscard]] std::uint64_t bytes_written() const noexcept;
  [[nodiscard]] std::uint64_t digest() const noexcept;
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::string partial_path() const { return path_ + ".partial"; }

  /// Atomically publishes the partial file as `path()` (fsync + rename +
  /// directory fsync) and closes. Throws ArtifactError(kIoError).
  void publish();

  /// Closes and removes the partial file (abandoned run). Idempotent.
  void discard() noexcept;

 private:
  void close_fd() noexcept;

  std::string path_;
  int fd_ = -1;
  Xxh64Stream hash_;
};

}  // namespace jem::io
