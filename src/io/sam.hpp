// Minimal SAM (Sequence Alignment/Map) emission: header (@HD, @SQ, @PG)
// plus the 11 mandatory record columns. Enough for downstream tools
// (samtools view/sort, IGV) to consume verified mappings produced by the
// alignment layer.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "io/sequence_set.hpp"

namespace jem::io {

struct SamRecord {
  std::string qname;
  std::uint32_t flag = 0;  // 0x4 unmapped, 0x10 reverse strand
  std::string rname = "*";
  std::uint64_t pos = 0;  // 1-based leftmost mapping position (0 = unmapped)
  std::uint32_t mapq = 255;
  std::string cigar = "*";
  std::string seq = "*";

  static constexpr std::uint32_t kUnmapped = 0x4;
  static constexpr std::uint32_t kReverse = 0x10;
};

/// Writes the header: @HD + one @SQ per reference sequence + @PG.
void write_sam_header(std::ostream& out, const SequenceSet& references,
                      std::string_view program = "jem-mapper");

/// Writes records (RNEXT/PNEXT/TLEN/QUAL are emitted as */0/0/*).
void write_sam_records(std::ostream& out,
                       const std::vector<SamRecord>& records);

}  // namespace jem::io
