// SequenceSet: an append-only, cache-friendly container of DNA sequences.
//
// Bases are stored contiguously in one arena (one byte per base, uppercase
// ACGTN) with an offsets table, so a set of 100k contigs costs two big
// allocations instead of 100k small strings. Views returned by `bases(id)`
// remain valid until the set is destroyed (the arena never shrinks, and
// growing uses reserve-doubling on a std::string whose data pointer may move —
// so views are invalidated by further appends; take views only after loading
// completes, which is how every driver uses it).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "io/sequence.hpp"

namespace jem::io {

class SequenceSet {
 public:
  SequenceSet() = default;

  /// Appends a sequence; returns its id (dense, starting at 0).
  SeqId add(std::string_view name, std::string_view bases);

  /// Appends every record of `records`.
  void add_all(std::span<const SequenceRecord> records);

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }
  [[nodiscard]] bool empty() const noexcept { return names_.empty(); }

  /// Total bases across all sequences.
  [[nodiscard]] std::uint64_t total_bases() const noexcept {
    return offsets_.empty() ? 0 : offsets_.back();
  }

  [[nodiscard]] std::string_view name(SeqId id) const;
  [[nodiscard]] std::string_view bases(SeqId id) const;
  [[nodiscard]] std::size_t length(SeqId id) const;

  /// Mean and population standard deviation of sequence lengths (Table I).
  struct LengthStats {
    double mean = 0.0;
    double stddev = 0.0;
    std::size_t min = 0;
    std::size_t max = 0;
  };
  [[nodiscard]] LengthStats length_stats() const noexcept;

  /// Id lookup by exact name; returns kInvalidSeqId when absent. O(n) —
  /// intended for tests and small sets, not hot paths.
  [[nodiscard]] SeqId find(std::string_view name) const noexcept;

  /// Reserve arena capacity up front when the total load size is known.
  void reserve(std::size_t sequences, std::uint64_t bases);

 private:
  std::vector<std::string> names_;
  std::vector<std::uint64_t> offsets_;  // offsets_[i] = end of sequence i
  std::string arena_;
};

}  // namespace jem::io
