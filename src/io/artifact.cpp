#include "io/artifact.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace jem::io {

// ---------------------------------------------------------------------------
// XXH64 (reference constants; Collet's xxHash, BSD-licensed algorithm).

namespace {

constexpr std::uint64_t kPrime1 = 0x9e3779b185ebca87ULL;
constexpr std::uint64_t kPrime2 = 0xc2b2ae3d27d4eb4fULL;
constexpr std::uint64_t kPrime3 = 0x165667b19e3779f9ULL;
constexpr std::uint64_t kPrime4 = 0x85ebca77c2b2ae63ULL;
constexpr std::uint64_t kPrime5 = 0x27d4eb2f165667c5ULL;

std::uint64_t rotl(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

std::uint64_t read_u64(const unsigned char* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // little-endian platform (enforced by the format docs)
}

std::uint32_t read_u32(const unsigned char* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint64_t round_step(std::uint64_t acc, std::uint64_t input) noexcept {
  acc += input * kPrime2;
  acc = rotl(acc, 31);
  return acc * kPrime1;
}

std::uint64_t merge_round(std::uint64_t acc, std::uint64_t val) noexcept {
  acc ^= round_step(0, val);
  return acc * kPrime1 + kPrime4;
}

std::uint64_t finalize(std::uint64_t h, const unsigned char* p,
                       std::size_t len) noexcept {
  while (len >= 8) {
    h ^= round_step(0, read_u64(p));
    h = rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
    len -= 8;
  }
  if (len >= 4) {
    h ^= static_cast<std::uint64_t>(read_u32(p)) * kPrime1;
    h = rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
    len -= 4;
  }
  while (len > 0) {
    h ^= static_cast<std::uint64_t>(*p) * kPrime5;
    h = rotl(h, 11) * kPrime1;
    ++p;
    --len;
  }
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace

std::uint64_t xxh64(std::string_view data, std::uint64_t seed) noexcept {
  Xxh64Stream stream(seed);
  stream.update(data);
  return stream.digest();
}

Xxh64Stream::Xxh64Stream(std::uint64_t seed) noexcept : seed_(seed) {
  acc_[0] = seed + kPrime1 + kPrime2;
  acc_[1] = seed + kPrime2;
  acc_[2] = seed;
  acc_[3] = seed - kPrime1;
}

void Xxh64Stream::update(std::string_view data) noexcept {
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  std::size_t len = data.size();
  total_ += len;

  if (buffered_ > 0) {
    const std::size_t take = std::min(len, sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    len -= take;
    if (buffered_ < sizeof(buffer_)) return;
    for (int i = 0; i < 4; ++i) {
      acc_[i] = round_step(acc_[i], read_u64(buffer_ + 8 * i));
    }
    buffered_ = 0;
  }

  while (len >= sizeof(buffer_)) {
    for (int i = 0; i < 4; ++i) {
      acc_[i] = round_step(acc_[i], read_u64(p + 8 * i));
    }
    p += sizeof(buffer_);
    len -= sizeof(buffer_);
  }

  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffered_ = len;
  }
}

std::uint64_t Xxh64Stream::digest() const noexcept {
  std::uint64_t h;
  if (total_ >= sizeof(buffer_)) {
    h = rotl(acc_[0], 1) + rotl(acc_[1], 7) + rotl(acc_[2], 12) +
        rotl(acc_[3], 18);
    for (int i = 0; i < 4; ++i) h = merge_round(h, acc_[i]);
  } else {
    h = seed_ + kPrime5;
  }
  h += total_;
  return finalize(h, buffer_, buffered_);
}

// ---------------------------------------------------------------------------
// Container framing.

std::string_view artifact_reason_name(ArtifactReason reason) noexcept {
  switch (reason) {
    case ArtifactReason::kOpenFailed: return "open-failed";
    case ArtifactReason::kBadMagic: return "bad-magic";
    case ArtifactReason::kBadVersion: return "bad-version";
    case ArtifactReason::kTruncated: return "truncated";
    case ArtifactReason::kChecksumMismatch: return "checksum-mismatch";
    case ArtifactReason::kBadSection: return "bad-section";
    case ArtifactReason::kParamsMismatch: return "params-mismatch";
    case ArtifactReason::kStaleJournal: return "stale-journal";
    case ArtifactReason::kIoError: return "io-error";
  }
  return "unknown";
}

std::uint64_t artifact_tag(std::string_view tag) {
  if (tag.empty() || tag.size() > 8) {
    throw ArtifactError(ArtifactReason::kBadSection,
                        "section tag must be 1..8 bytes: '" +
                            std::string(tag) + "'");
  }
  std::uint64_t value = 0;
  std::memcpy(&value, tag.data(), tag.size());
  return value;
}

namespace {

constexpr std::size_t kHeaderSize = 16;       // magic + version + count
constexpr std::size_t kSectionHeader = 24;    // tag + size + checksum
// Sanity cap so a corrupted section_count cannot drive a giant loop: no
// artifact in this codebase has more than a handful of sections.
constexpr std::uint32_t kMaxSections = 4096;

void append_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void append_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

}  // namespace

void ArtifactWriter::add_section(std::string_view tag,
                                 std::span<const std::byte> payload) {
  add_section(tag, std::string_view(
                       reinterpret_cast<const char*>(payload.data()),
                       payload.size()));
}

void ArtifactWriter::add_section(std::string_view tag,
                                 std::string_view payload) {
  sections_.push_back({artifact_tag(tag), std::string(payload)});
}

std::string ArtifactWriter::serialize() const {
  std::string out;
  std::size_t total = kHeaderSize;
  for (const Section& s : sections_) total += kSectionHeader + s.payload.size();
  out.reserve(total);

  append_u64(out, magic_);
  append_u32(out, version_);
  append_u32(out, static_cast<std::uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    append_u64(out, s.tag);
    append_u64(out, static_cast<std::uint64_t>(s.payload.size()));
    append_u64(out, xxh64(s.payload));
    out.append(s.payload);
  }
  return out;
}

void ArtifactWriter::save(const std::string& path) const {
  atomic_write_file(path, serialize());
}

ArtifactReader::ArtifactReader(std::string bytes, std::uint64_t expected_magic,
                               std::uint32_t expected_version)
    : bytes_(std::move(bytes)) {
  const auto* data = reinterpret_cast<const unsigned char*>(bytes_.data());
  if (bytes_.size() < kHeaderSize) {
    throw ArtifactError(ArtifactReason::kTruncated,
                        "file shorter than the artifact header (" +
                            std::to_string(bytes_.size()) + " bytes)");
  }
  const std::uint64_t magic = read_u64(data);
  if (magic != expected_magic) {
    throw ArtifactError(ArtifactReason::kBadMagic,
                        "magic mismatch (not this artifact kind)");
  }
  const std::uint32_t version = read_u32(data + 8);
  if (version != expected_version) {
    throw ArtifactError(ArtifactReason::kBadVersion,
                        "format version " + std::to_string(version) +
                            ", expected " + std::to_string(expected_version));
  }
  const std::uint32_t count = read_u32(data + 12);
  if (count > kMaxSections) {
    throw ArtifactError(ArtifactReason::kTruncated,
                        "implausible section count " + std::to_string(count));
  }

  std::size_t cursor = kHeaderSize;
  sections_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (bytes_.size() - cursor < kSectionHeader) {
      throw ArtifactError(ArtifactReason::kTruncated,
                          "file ends inside section header " +
                              std::to_string(i));
    }
    const std::uint64_t tag = read_u64(data + cursor);
    const std::uint64_t size = read_u64(data + cursor + 8);
    const std::uint64_t checksum = read_u64(data + cursor + 16);
    cursor += kSectionHeader;
    if (bytes_.size() - cursor < size) {
      throw ArtifactError(ArtifactReason::kTruncated,
                          "file ends inside section payload " +
                              std::to_string(i) + " (need " +
                              std::to_string(size) + " bytes, have " +
                              std::to_string(bytes_.size() - cursor) + ")");
    }
    const std::string_view payload(bytes_.data() + cursor,
                                   static_cast<std::size_t>(size));
    if (xxh64(payload) != checksum) {
      throw ArtifactError(ArtifactReason::kChecksumMismatch,
                          "section " + std::to_string(i) +
                              " payload fails its XXH64 checksum");
    }
    sections_.push_back({tag, cursor, static_cast<std::size_t>(size)});
    cursor += size;
  }
  if (cursor != bytes_.size()) {
    throw ArtifactError(ArtifactReason::kTruncated,
                        "trailing bytes after the last section");
  }
}

ArtifactReader ArtifactReader::open(const std::string& path,
                                    std::uint64_t expected_magic,
                                    std::uint32_t expected_version) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ArtifactError(ArtifactReason::kOpenFailed,
                        "cannot open artifact: " + path);
  }
  std::ostringstream raw;
  raw << in.rdbuf();
  return ArtifactReader(std::move(raw).str(), expected_magic,
                        expected_version);
}

bool ArtifactReader::has_section(std::string_view tag) const noexcept {
  std::uint64_t value = 0;
  if (tag.empty() || tag.size() > 8) return false;
  std::memcpy(&value, tag.data(), tag.size());
  for (const Entry& e : sections_) {
    if (e.tag == value) return true;
  }
  return false;
}

std::string_view ArtifactReader::section(std::string_view tag) const {
  const std::uint64_t value = artifact_tag(tag);
  for (const Entry& e : sections_) {
    if (e.tag == value) return {bytes_.data() + e.offset, e.size};
  }
  throw ArtifactError(ArtifactReason::kBadSection,
                      "required section missing: '" + std::string(tag) + "'");
}

std::string_view ArtifactReader::section(std::string_view tag,
                                         std::size_t expected_size) const {
  const std::string_view payload = section(tag);
  if (payload.size() != expected_size) {
    throw ArtifactError(ArtifactReason::kBadSection,
                        "section '" + std::string(tag) + "' has " +
                            std::to_string(payload.size()) +
                            " bytes, expected " +
                            std::to_string(expected_size));
  }
  return payload;
}

// ---------------------------------------------------------------------------
// Atomic publish.

void atomic_write_file(const std::string& path, std::string_view bytes) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw ArtifactError(ArtifactReason::kIoError,
                        "cannot create temp file " + tmp + ": " +
                            std::strerror(errno));
  }
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw ArtifactError(ArtifactReason::kIoError,
                          "write to " + tmp + " failed: " +
                              std::strerror(err));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw ArtifactError(ArtifactReason::kIoError,
                        "fsync/close of " + tmp + " failed: " +
                            std::strerror(err));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw ArtifactError(ArtifactReason::kIoError,
                        "rename " + tmp + " -> " + path + " failed: " +
                            std::strerror(err));
  }
  // Durability of the rename itself: fsync the containing directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);  // best-effort; some filesystems reject dir fsync
    ::close(dfd);
  }
}

}  // namespace jem::io
