// FASTA/FASTQ readers and writers.
//
// The readers are strict about structure (a FASTA record must start with '>',
// a FASTQ record with '@' and have a matching-length quality string) but
// tolerant of formatting noise: multi-line sequences, CRLF endings, blank
// trailing lines, and lowercase bases (normalized to uppercase). Non-ACGTN
// IUPAC codes are preserved by the reader; the core module treats anything
// outside ACGT as an ambiguous base.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "io/sequence.hpp"
#include "io/sequence_set.hpp"

namespace jem::io {

/// Thrown on malformed input files.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses an entire FASTA stream.
[[nodiscard]] std::vector<SequenceRecord> read_fasta(std::istream& in);

/// Parses an entire FASTQ stream.
[[nodiscard]] std::vector<SequenceRecord> read_fastq(std::istream& in);

/// Auto-detects FASTA vs FASTQ from the first non-blank byte ('>' vs '@').
[[nodiscard]] std::vector<SequenceRecord> read_sequences(std::istream& in);

/// File-path conveniences (throw ParseError when the file cannot be opened).
[[nodiscard]] std::vector<SequenceRecord> read_sequences_file(
    const std::string& path);
void load_into(const std::string& path, SequenceSet& out);

/// Writes FASTA with the given line width (0 = single line per record).
void write_fasta(std::ostream& out, std::span<const SequenceRecord> records,
                 std::size_t line_width = 80);
void write_fasta(std::ostream& out, const SequenceSet& set,
                 std::size_t line_width = 80);
void write_fasta_file(const std::string& path,
                      std::span<const SequenceRecord> records,
                      std::size_t line_width = 80);

/// Writes FASTQ ('I' quality filled in when a record has none).
void write_fastq(std::ostream& out, std::span<const SequenceRecord> records);

}  // namespace jem::io
