#include "util/options.hpp"

#include <charconv>
#include <sstream>

namespace jem::util {

namespace {

template <typename T>
T parse_number(std::string_view name, std::string_view text) {
  T value{};
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw OptionError("invalid numeric value '" + std::string(text) +
                      "' for --" + std::string(name));
  }
  return value;
}

double parse_double(std::string_view name, std::string_view text) {
  // std::from_chars<double> is available in libstdc++ 12; keep strtod as a
  // portable, locale-independent-enough fallback path with full validation.
  double value{};
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw OptionError("invalid numeric value '" + std::string(text) +
                      "' for --" + std::string(name));
  }
  return value;
}

}  // namespace

void Options::add_spec(Spec spec) {
  if (find(spec.name) != nullptr) {
    throw OptionError("duplicate option registration: --" + spec.name);
  }
  specs_.push_back(std::move(spec));
}

void Options::add_flag(std::string name, bool& target, std::string help) {
  add_spec({std::move(name), Kind::kFlag, std::move(help),
            [&target](std::string_view v) { target = (v == "1"); }});
}

void Options::add_int(std::string name, std::int64_t& target,
                      std::string help) {
  std::string captured_name = name;
  add_spec({std::move(name), Kind::kInt, std::move(help),
            [&target, captured_name](std::string_view v) {
              target = parse_number<std::int64_t>(captured_name, v);
            }});
}

void Options::add_uint(std::string name, std::uint64_t& target,
                       std::string help) {
  std::string captured_name = name;
  add_spec({std::move(name), Kind::kUint, std::move(help),
            [&target, captured_name](std::string_view v) {
              target = parse_number<std::uint64_t>(captured_name, v);
            }});
}

void Options::add_double(std::string name, double& target, std::string help) {
  std::string captured_name = name;
  add_spec({std::move(name), Kind::kDouble, std::move(help),
            [&target, captured_name](std::string_view v) {
              target = parse_double(captured_name, v);
            }});
}

void Options::add_string(std::string name, std::string& target,
                         std::string help) {
  add_spec({std::move(name), Kind::kString, std::move(help),
            [&target](std::string_view v) { target = std::string(v); }});
}

const Options::Spec* Options::find(std::string_view name) const noexcept {
  for (const Spec& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<std::string> Options::parse(
    std::span<const char* const> args) const {
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string_view arg = args[i];
    if (!arg.starts_with("--")) {
      positional.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);

    // --name=value form.
    std::string_view name = arg;
    std::optional<std::string_view> inline_value;
    if (const std::size_t eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }

    const Spec* spec = find(name);
    bool negated = false;
    if (spec == nullptr && name.starts_with("no-")) {
      spec = find(name.substr(3));
      if (spec != nullptr && spec->kind == Kind::kFlag) {
        negated = true;
      } else {
        spec = nullptr;
      }
    }
    if (spec == nullptr) {
      throw OptionError("unknown option --" + std::string(name));
    }

    if (spec->kind == Kind::kFlag) {
      if (inline_value.has_value()) {
        throw OptionError("flag --" + spec->name + " does not take a value");
      }
      spec->apply(negated ? "0" : "1");
      continue;
    }

    std::string_view value;
    if (inline_value.has_value()) {
      value = *inline_value;
    } else {
      if (i + 1 >= args.size()) {
        throw OptionError("option --" + spec->name + " requires a value");
      }
      value = args[++i];
    }
    spec->apply(value);
  }
  return positional;
}

std::vector<std::string> Options::parse(int argc,
                                        const char* const* argv) const {
  return parse(std::span<const char* const>(argv + 1,
                                            static_cast<std::size_t>(argc - 1)));
}

std::string Options::usage(std::string_view program) const {
  std::ostringstream out;
  out << "usage: " << program << " [options]\n";
  for (const Spec& spec : specs_) {
    out << "  --" << spec.name;
    switch (spec.kind) {
      case Kind::kFlag: break;
      case Kind::kInt: out << " <int>"; break;
      case Kind::kUint: out << " <uint>"; break;
      case Kind::kDouble: out << " <float>"; break;
      case Kind::kString: out << " <string>"; break;
    }
    out << "\n      " << spec.help << '\n';
  }
  return out.str();
}

}  // namespace jem::util
