// Minimal leveled logger. Single global sink (stderr by default), thread-safe,
// printf-free (iostream-based formatting via operator<< chaining into an
// internal buffer). Intended for coarse progress/diagnostic messages from the
// drivers — hot loops must not log.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace jem::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide logger configuration and emission.
class Log {
 public:
  static void set_level(LogLevel level) noexcept;
  [[nodiscard]] static LogLevel level() noexcept;

  /// Emit a message at the given level (no-op if below threshold).
  static void write(LogLevel level, std::string_view msg);

  /// Capture everything at/above the threshold into an internal string
  /// instead of stderr (used by tests). Returns previously captured text.
  static std::string begin_capture();
  static std::string end_capture();

 private:
  static std::mutex mutex_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Log::write(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

[[nodiscard]] inline detail::LogLine log_debug() {
  return detail::LogLine(LogLevel::kDebug);
}
[[nodiscard]] inline detail::LogLine log_info() {
  return detail::LogLine(LogLevel::kInfo);
}
[[nodiscard]] inline detail::LogLine log_warn() {
  return detail::LogLine(LogLevel::kWarn);
}
[[nodiscard]] inline detail::LogLine log_error() {
  return detail::LogLine(LogLevel::kError);
}

}  // namespace jem::util
