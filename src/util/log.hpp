// Minimal leveled logger. Single global sink (stderr by default), thread-safe,
// printf-free (iostream-based formatting via operator<< chaining into an
// internal buffer). Intended for coarse progress/diagnostic messages from the
// drivers — hot loops must not log.
//
// Two output formats (docs/observability.md "Logs"):
//   * kHuman (default): `<ISO-8601 UTC ms> [info ] msg` on stderr. The
//     capture path (tests) stays the legacy `[info ] msg` — byte-compatible
//     with every golden that greps captured output.
//   * kJson: one JSON object per line, `{"ts":"...","level":"info",
//     "msg":"..."}`, on both the stderr and capture paths (`jem serve
//     --log-format=json`).
//
// Timestamps are monotonic-to-wallclock: the wall clock is sampled once at
// first use and advanced by the steady clock, so a step in the system clock
// (NTP slew, manual set) never makes log timestamps jump or run backwards.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace jem::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

enum class LogFormat : int { kHuman = 0, kJson = 1 };

/// Process-wide logger configuration and emission.
class Log {
 public:
  static void set_level(LogLevel level) noexcept;
  [[nodiscard]] static LogLevel level() noexcept;

  static void set_format(LogFormat format) noexcept;
  [[nodiscard]] static LogFormat format() noexcept;

  /// Emit a message at the given level (no-op if below threshold).
  static void write(LogLevel level, std::string_view msg);

  /// Capture everything at/above the threshold into an internal string
  /// instead of stderr (used by tests). Returns previously captured text.
  static std::string begin_capture();
  static std::string end_capture();

  /// Current monotonic-to-wallclock timestamp, formatted ISO-8601 UTC with
  /// millisecond precision (`2026-08-08T12:34:56.789Z`).
  [[nodiscard]] static std::string timestamp();

 private:
  static std::mutex mutex_;
};

/// Per-site log throttle: at most one emission per `period`, counting what
/// was suppressed in between. Thread-safe; time is injectable for tests.
///
///     static util::LogRateLimiter limiter;   // one per log site
///     std::uint64_t suppressed = 0;
///     if (limiter.allow(suppressed)) {
///       util::log_warn() << "worker died" << suffix(suppressed);
///     }
class LogRateLimiter {
 public:
  using Clock = std::chrono::steady_clock;

  explicit LogRateLimiter(
      std::chrono::milliseconds period = std::chrono::seconds(1))
      : period_(period) {}

  /// True when this call may log; `suppressed` receives the number of
  /// throttled calls since the last allowed one.
  bool allow(std::uint64_t& suppressed) { return allow(Clock::now(), suppressed); }
  bool allow(Clock::time_point now, std::uint64_t& suppressed);

  /// Renders `" (N suppressed)"`, or "" when nothing was suppressed.
  [[nodiscard]] static std::string suffix(std::uint64_t suppressed);

 private:
  std::chrono::milliseconds period_;
  std::mutex mutex_;
  bool primed_ = false;
  Clock::time_point last_{};
  std::uint64_t suppressed_ = 0;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Log::write(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

[[nodiscard]] inline detail::LogLine log_debug() {
  return detail::LogLine(LogLevel::kDebug);
}
[[nodiscard]] inline detail::LogLine log_info() {
  return detail::LogLine(LogLevel::kInfo);
}
[[nodiscard]] inline detail::LogLine log_warn() {
  return detail::LogLine(LogLevel::kWarn);
}
[[nodiscard]] inline detail::LogLine log_error() {
  return detail::LogLine(LogLevel::kError);
}

}  // namespace jem::util
