// Wall-clock and scoped timers used by the benchmark harness and the
// per-step runtime breakdown collectors (Fig 7a of the paper).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

namespace jem::util {

/// Monotonic wall-clock stopwatch. start() resets; elapsed_s() may be read
/// repeatedly while running.
class WallTimer {
 public:
  WallTimer() noexcept { start(); }

  void start() noexcept { t0_ = Clock::now(); }

  [[nodiscard]] double elapsed_s() const noexcept {
    return std::chrono::duration<double>(Clock::now() - t0_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept { return elapsed_s() * 1e3; }

  [[nodiscard]] std::uint64_t elapsed_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  // Timing must survive wall-clock adjustments (NTP slew, suspend): a
  // non-monotonic clock here would let elapsed_ns() underflow to huge
  // values and corrupt every stage-time stat built on this class.
  static_assert(Clock::is_steady,
                "WallTimer requires a monotonic clock");
  Clock::time_point t0_;
};

/// Accumulates elapsed seconds into a caller-owned double on destruction.
/// Usage:  { ScopedAccumulator t(times.sketch_s); ...work...; }
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) noexcept : sink_(sink) {}
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;
  ~ScopedAccumulator() { sink_.get() += timer_.elapsed_s(); }

 private:
  std::reference_wrapper<double> sink_;
  WallTimer timer_;
};

/// Times a callable and returns {result-of-callable, seconds}. For void
/// callables use time_void().
template <typename F>
[[nodiscard]] auto timed(F&& fn) -> std::pair<decltype(fn()), double> {
  WallTimer t;
  auto result = std::forward<F>(fn)();
  return {std::move(result), t.elapsed_s()};
}

template <typename F>
[[nodiscard]] double time_void(F&& fn) {
  WallTimer t;
  std::forward<F>(fn)();
  return t.elapsed_s();
}

}  // namespace jem::util
