// Deterministic pseudo-random number generation for reproducible experiments.
//
// Two generators are provided:
//  * SplitMix64 — tiny, stateless-feeling stream generator; used to seed other
//    generators and to derive independent streams from a single experiment
//    seed (seed + stream-id hashing).
//  * Xoshiro256ss — general-purpose 64-bit generator (xoshiro256**), the
//    workhorse for all simulators. Satisfies UniformRandomBitGenerator so it
//    can drive <random> distributions.
//
// Every experiment in this repository takes an explicit seed; nothing reads
// std::random_device, so all results are bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <limits>

namespace jem::util {

/// SplitMix64 (Steele, Lea, Flood 2014). Primarily a seeding utility.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// Mix a 64-bit value through one full SplitMix64 step (gamma increment +
/// finalizer, so there is no zero fixed point). Useful for deriving
/// independent sub-seeds: mix64(seed ^ stream_id).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 2^256-1 period.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from SplitMix64 as the authors recommend.
  explicit constexpr Xoshiro256ss(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] constexpr std::uint64_t bounded(std::uint64_t bound) noexcept {
    // 128-bit multiply keeps the fast path branch-free in the common case.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace jem::util
