#include "util/fault_plan.hpp"

#include <algorithm>
#include <thread>

#include "util/prng.hpp"

namespace jem::util {

namespace {

/// FNV-1a over the site name; mixed once more so short names spread.
std::uint64_t hash_site(std::string_view site) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

}  // namespace

FaultPlan& FaultPlan::delay_at(int rank, std::string site,
                               std::uint64_t invocation,
                               std::chrono::milliseconds delay) {
  events_.push_back(
      {rank, std::move(site), invocation, FaultAction::kDelay, delay});
  return *this;
}

FaultPlan& FaultPlan::drop_at(int rank, std::string site,
                              std::uint64_t invocation) {
  events_.push_back(
      {rank, std::move(site), invocation, FaultAction::kDrop, {}});
  return *this;
}

FaultPlan& FaultPlan::abort_at(int rank, std::string site,
                               std::uint64_t invocation) {
  events_.push_back(
      {rank, std::move(site), invocation, FaultAction::kAbort, {}});
  return *this;
}

FaultPlan FaultPlan::random(std::uint64_t seed,
                            const RandomFaultRates& rates) {
  if (rates.delay < 0.0 || rates.drop < 0.0 || rates.abort < 0.0 ||
      rates.delay + rates.drop + rates.abort > 1.0) {
    throw std::invalid_argument(
        "FaultPlan::random: rates must be non-negative and sum to <= 1");
  }
  if (rates.max_delay.count() < 1) {
    throw std::invalid_argument("FaultPlan::random: max_delay must be >= 1ms");
  }
  FaultPlan plan;
  plan.random_ = true;
  plan.seed_ = seed;
  plan.rates_ = rates;
  return plan;
}

FaultDecision FaultPlan::decide(int rank, std::string_view site,
                                std::uint64_t invocation) const {
  for (const Event& event : events_) {
    const bool rank_match = event.rank == kAnyRank || event.rank == rank;
    const bool site_match = event.site.empty() || event.site == site;
    const bool call_match =
        event.invocation == kAnyInvocation || event.invocation == invocation;
    if (rank_match && site_match && call_match) {
      return {event.action, event.delay};
    }
  }
  if (!random_) return {};

  // One hash decides the action, a dependent hash the delay magnitude —
  // both pure functions of the key, so the schedule is replayable.
  const std::uint64_t key =
      mix64(seed_ ^ hash_site(site)) ^
      mix64(static_cast<std::uint64_t>(static_cast<std::int64_t>(rank)) +
            0x9e3779b97f4a7c15ULL) ^
      mix64(invocation + 0x2545f4914f6cdd1dULL);
  const double u =
      static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;  // [0, 1)
  if (u < rates_.abort) return {FaultAction::kAbort, {}};
  if (u < rates_.abort + rates_.drop) return {FaultAction::kDrop, {}};
  if (u < rates_.abort + rates_.drop + rates_.delay) {
    const auto span = static_cast<std::uint64_t>(rates_.max_delay.count());
    const std::chrono::milliseconds delay{
        1 + static_cast<std::int64_t>(mix64(key + 1) % span)};
    return {FaultAction::kDelay, delay};
  }
  return {};
}

FaultDecision FaultInjector::next(std::string_view site) {
  if (plan_ == nullptr) return {};
  std::uint64_t invocation = 0;
  {
    std::lock_guard lock(mutex_);
    auto it = std::find_if(counters_.begin(), counters_.end(),
                           [&](const auto& c) { return c.first == site; });
    if (it == counters_.end()) {
      counters_.emplace_back(std::string(site), 0);
      it = counters_.end() - 1;
    }
    invocation = it->second++;
  }
  const FaultDecision decision = plan_->decide(rank_, site, invocation);
  switch (decision.action) {
    case FaultAction::kDelay:
      ++delays_;
      break;
    case FaultAction::kDrop:
      ++drops_;
      break;
    case FaultAction::kAbort:
      ++aborts_;
      break;
    case FaultAction::kNone:
      break;
  }
  return decision;
}

bool FaultInjector::fire(std::string_view site) {
  if (plan_ == nullptr) return true;
  const FaultDecision decision = next(site);
  switch (decision.action) {
    case FaultAction::kDelay:
      std::this_thread::sleep_for(decision.delay);
      return true;
    case FaultAction::kDrop:
      return false;
    case FaultAction::kAbort:
      throw FaultAbort(rank_, std::string(site));
    case FaultAction::kNone:
      break;
  }
  return true;
}

}  // namespace jem::util
