// zipf_distribution — Zipf(N, s) variates by rejection-inversion (Hörmann &
// Derflinger, "Rejection-inversion to generate variates from monotone
// discrete distributions", ACM TOMACS 6.3, 1996). The standard key-skew
// model for serving benchmarks: rank-1 keys dominate, the tail is long —
// exactly the "heavy traffic, repeated hot segments" shape the serve
// layer's LRU cache and `jem loadgen` (ROADMAP item 4c) are built around.
//
// Satisfies the standard RandomNumberDistribution call shape for the pieces
// we use: construct with (n, s), call with any UniformRandomBitGenerator
// (util::Xoshiro256ss), get ranks in [1, n]. Deterministic given the
// generator — no global RNG state.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

namespace jem::util {

template <class IntType = std::uint64_t, class RealType = double>
class zipf_distribution {
 public:
  using result_type = IntType;

  /// Ranks are drawn from [1, n] with P(k) ∝ k^-s. `s` = 1 is classic
  /// Zipf; s > 1 skews harder toward rank 1.
  explicit zipf_distribution(IntType n, RealType s = 1.0)
      : n_(n),
        q_(s),
        h_x1_(h(RealType(1.5)) - RealType(1)),
        h_n_(h(RealType(n) + RealType(0.5))),
        dist_(h_x1_ - h_n_) {
    assert(n >= 1);
  }

  template <class Generator>
  IntType operator()(Generator& g) {
    while (true) {
      const RealType u = h_n_ + uniform01(g) * dist_;
      const RealType x = h_inv(u);
      IntType k = static_cast<IntType>(x + RealType(0.5));
      if (k < 1) k = 1;
      if (k > n_) k = n_;
      // Accept iff u lands inside the bar of rank k: the rejection step
      // that corrects the continuous envelope back to the discrete pmf.
      if (u >= h(RealType(k) + RealType(0.5)) - std::exp(-q_ * std::log(
                                                     RealType(k)))) {
        return k;
      }
    }
  }

  [[nodiscard]] IntType n() const noexcept { return n_; }
  [[nodiscard]] RealType s() const noexcept { return q_; }

 private:
  /// H(x) = ∫ x^-q dx: log for q == 1, power form otherwise.
  [[nodiscard]] RealType h(RealType x) const {
    const RealType log_x = std::log(x);
    if (q_ == RealType(1)) return log_x;
    return std::expm1((RealType(1) - q_) * log_x) / (RealType(1) - q_);
  }

  [[nodiscard]] RealType h_inv(RealType u) const {
    if (q_ == RealType(1)) return std::exp(u);
    return std::exp(std::log1p(u * (RealType(1) - q_)) / (RealType(1) - q_));
  }

  /// Uniform in [0, 1) from the top 53 bits of one 64-bit draw.
  template <class Generator>
  static RealType uniform01(Generator& g) {
    return RealType(g() >> 11) * RealType(0x1.0p-53);
  }

  IntType n_;
  RealType q_;
  RealType h_x1_;
  RealType h_n_;
  RealType dist_;
};

}  // namespace jem::util
