// RingDeque — a growable power-of-two ring buffer with deque semantics
// (push_back / pop_back / pop_front / front / back), built for the sketch
// hot path where std::deque's chunked allocation dominates the profile.
//
// Unlike std::deque, clearing a RingDeque keeps its storage, so a scratch
// object that survives across map_segment calls makes the sliding-window
// kernels allocation-free at steady state: after the first few segments the
// capacity has grown to the high-water mark and every later call reuses it.
// Indexing is a mask (capacity is always a power of two), so front/back
// access compiles to a load plus an AND.
//
// T must be trivially copyable (the growth path memmoves elements in two
// contiguous spans); the window-minimum entries stored here are POD triples.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <type_traits>
#include <vector>

namespace jem::util {

template <typename T>
class RingDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "RingDeque requires trivially copyable elements");

 public:
  RingDeque() = default;

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_.size();
  }

  /// Drops all elements; keeps the storage (the point of the class).
  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

  /// Ensures capacity for at least `n` elements without further growth.
  void reserve(std::size_t n) {
    if (n > slots_.size()) grow(round_up_pow2(n));
  }

  void push_back(const T& value) {
    if (size_ == slots_.size()) grow(slots_.empty() ? 16 : slots_.size() * 2);
    slots_[(head_ + size_) & mask_] = value;
    ++size_;
  }

  void pop_back() noexcept { --size_; }

  void pop_front() noexcept {
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  [[nodiscard]] const T& front() const noexcept { return slots_[head_]; }
  [[nodiscard]] T& front() noexcept { return slots_[head_]; }
  [[nodiscard]] const T& back() const noexcept {
    return slots_[(head_ + size_ - 1) & mask_];
  }
  [[nodiscard]] T& back() noexcept {
    return slots_[(head_ + size_ - 1) & mask_];
  }

  /// i-th element from the front (0 = front). No bounds check.
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return slots_[(head_ + i) & mask_];
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 16;
    while (p < n) p *= 2;
    return p;
  }

  void grow(std::size_t new_capacity) {
    std::vector<T> next(new_capacity);
    if (size_ > 0) {
      // Unroll the ring into the front of the new storage: the live range
      // wraps at most once, so it is one or two contiguous memcpys.
      const std::size_t first = std::min(size_, slots_.size() - head_);
      std::memcpy(next.data(), slots_.data() + head_, first * sizeof(T));
      std::memcpy(next.data() + first, slots_.data(),
                  (size_ - first) * sizeof(T));
    }
    slots_ = std::move(next);
    mask_ = slots_.size() - 1;
    head_ = 0;
  }

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace jem::util
