#include "util/thread_pool.hpp"

#include <algorithm>

namespace jem::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t count = std::max<std::size_t>(1, num_threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_task_.notify_one();
  return future;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();  // exceptions surface through the future
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for_blocks(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    std::size_t num_blocks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  const std::size_t n = end - begin;
  const std::size_t blocks = std::max<std::size_t>(1, num_blocks);
  std::vector<std::future<void>> futures;
  futures.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const BlockRange range = block_range(n, blocks, b);
    if (range.begin == range.end) continue;
    futures.push_back(pool.submit([&fn, b, range, begin] {
      fn(b, begin + range.begin, begin + range.end);
    }));
  }
  for (auto& future : futures) future.get();
}

}  // namespace jem::util
