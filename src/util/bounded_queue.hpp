// BoundedQueue — a fixed-capacity MPMC queue with blocking backpressure,
// the hand-off between the streaming engine's reader and map stages. A full
// queue blocks producers (so a fast reader cannot buffer an unbounded number
// of batches ahead of slow mappers), an empty open queue blocks consumers,
// and close() releases everyone: queued items remain poppable so shutdown
// drains rather than drops.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace jem::util {

/// Outcome of a timed queue operation: the wait either produced/consumed an
/// item, observed terminal closure (closed *and* drained for pops, closed at
/// all for pushes), or ran out of time with the queue still live.
enum class QueueOpResult { kSuccess, kClosed, kTimeout };

template <typename T>
class BoundedQueue {
 public:
  /// Capacity is clamped to at least 1 (a zero-capacity queue could never
  /// transfer an item).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  /// Blocks while the queue is full. Returns false (dropping `value`) when
  /// the queue is closed, true once the item is enqueued.
  bool push(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty and open. Returns nullopt only once the
  /// queue is closed *and* drained, so no accepted item is ever lost.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    std::optional<T> value(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Timed push: waits at most `timeout` for a free slot. `value` is moved
  /// from only on kSuccess, so the caller can retry the same object after a
  /// kTimeout (the bounded-retry-with-backoff loops in the streaming engine
  /// depend on this).
  [[nodiscard]] QueueOpResult push_wait_for(T& value,
                                            std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex_);
    const bool ready = not_full_.wait_for(lock, timeout, [&] {
      return items_.size() < capacity_ || closed_;
    });
    if (!ready) return QueueOpResult::kTimeout;
    if (closed_) return QueueOpResult::kClosed;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return QueueOpResult::kSuccess;
  }

  /// Timed pop: waits at most `timeout` for an item. kClosed is terminal
  /// (closed and drained); kTimeout means the queue is still live but empty.
  [[nodiscard]] QueueOpResult pop_wait_for(T& out,
                                           std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex_);
    const bool ready = not_empty_.wait_for(
        lock, timeout, [&] { return !items_.empty() || closed_; });
    if (!ready) return QueueOpResult::kTimeout;
    if (items_.empty()) return QueueOpResult::kClosed;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return QueueOpResult::kSuccess;
  }

  /// Marks the queue closed and wakes every blocked producer and consumer.
  /// Idempotent; pending items stay poppable.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace jem::util
