// Tiny declarative command-line option parser used by the example programs
// and the table/figure drivers. Supports --name value, --name=value, and
// boolean flags (--flag / --no-flag). Unknown options are an error; positional
// arguments are collected in order.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace jem::util {

/// Thrown on malformed command lines (unknown option, missing value, bad
/// number). The driver catches it, prints usage, and exits non-zero.
class OptionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Options {
 public:
  /// Registers an option bound to an out-parameter. The bound variable keeps
  /// its initial value when the flag is absent, so defaults live at the
  /// declaration site.
  void add_flag(std::string name, bool& target, std::string help);
  void add_int(std::string name, std::int64_t& target, std::string help);
  void add_uint(std::string name, std::uint64_t& target, std::string help);
  void add_double(std::string name, double& target, std::string help);
  void add_string(std::string name, std::string& target, std::string help);

  /// Parses argv (excluding argv[0]). Throws OptionError on any problem.
  /// Returns the positional arguments in order.
  [[nodiscard]] std::vector<std::string> parse(
      std::span<const char* const> args) const;

  /// Convenience overload for main(argc, argv).
  [[nodiscard]] std::vector<std::string> parse(int argc,
                                               const char* const* argv) const;

  /// Human-readable usage text listing every registered option.
  [[nodiscard]] std::string usage(std::string_view program) const;

 private:
  enum class Kind { kFlag, kInt, kUint, kDouble, kString };

  struct Spec {
    std::string name;
    Kind kind;
    std::string help;
    std::function<void(std::string_view)> apply;  // kFlag: "1"/"0"
  };

  void add_spec(Spec spec);
  [[nodiscard]] const Spec* find(std::string_view name) const noexcept;

  std::vector<Spec> specs_;
};

}  // namespace jem::util
