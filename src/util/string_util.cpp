#include "util/string_util.hpp"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace jem::util {

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!text.empty() && is_space(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && is_space(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) {
      out.push_back(',');
    }
    out.push_back(digits[i]);
  }
  return out;
}

std::string fixed(double value, int digits) {
  std::array<char, 64> buf{};
  const int written =
      std::snprintf(buf.data(), buf.size(), "%.*f", digits, value);
  return std::string(buf.data(), written > 0 ? static_cast<std::size_t>(written)
                                             : std::size_t{0});
}

std::string human_bp(std::uint64_t bp) {
  if (bp >= 1'000'000'000ULL) {
    return fixed(static_cast<double>(bp) / 1e9, 2) + " Gbp";
  }
  if (bp >= 1'000'000ULL) {
    return fixed(static_cast<double>(bp) / 1e6, 2) + " Mbp";
  }
  if (bp >= 1'000ULL) {
    return fixed(static_cast<double>(bp) / 1e3, 2) + " Kbp";
  }
  return std::to_string(bp) + " bp";
}

std::string to_upper(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace jem::util
