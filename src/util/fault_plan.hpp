// FaultPlan — deterministic fault injection for the runtime's concurrency
// layers (mpisim collectives, the StagedExecutor, the engine's streaming
// pipeline). A plan is a pure description of which operations misbehave:
// every decision is keyed by (rank, site name, invocation count) and derived
// either from an explicit event list or from a seeded hash — never from
// wall-clock time or std::random_device — so the same plan replays the same
// fault schedule on every run. That is what makes the chaos tests in
// tests/chaos/ reproducible instead of flaky.
//
// Three fault actions:
//  * kDelay — the operation is stalled (really slept at runtime sites,
//    added to the modeled cost in the StagedExecutor). Delays must never
//    change results, only timing — the chaos suite asserts bit-identical
//    output under delay-only plans.
//  * kDrop  — the operation's payload is lost (a collective contributes an
//    empty payload, a p2p message vanishes, a stream batch is discarded).
//    Drops degrade output and are always counted, never silent.
//  * kAbort — the site throws FaultAbort, modeling a crashed rank or a
//    wedged pipeline stage. Drivers with a recovery path (run_distributed*)
//    redistribute the lost work; everything else surfaces a structured
//    error instead of deadlocking.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace jem::util {

enum class FaultAction : std::uint8_t { kNone, kDelay, kDrop, kAbort };

/// The outcome of one fault-plan query.
struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  std::chrono::milliseconds delay{0};  // kDelay only
};

/// Thrown by fault sites on a kAbort decision. Carries where it fired so
/// failure reports can name the lost step.
class FaultAbort : public std::runtime_error {
 public:
  FaultAbort(int rank, std::string site)
      : std::runtime_error("fault injected: rank " + std::to_string(rank) +
                           " aborted at " + site),
        rank_(rank),
        site_(std::move(site)) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] const std::string& site() const noexcept { return site_; }

 private:
  int rank_;
  std::string site_;
};

/// Per-decision probabilities for FaultPlan::random. Probabilities are
/// evaluated in order abort, drop, delay and must sum to <= 1.
struct RandomFaultRates {
  double delay = 0.0;
  double drop = 0.0;
  double abort = 0.0;
  std::chrono::milliseconds max_delay{5};  // injected delays are in
                                           // [1, max_delay] ms
};

class FaultPlan {
 public:
  static constexpr int kAnyRank = -1;
  static constexpr std::uint64_t kAnyInvocation =
      ~static_cast<std::uint64_t>(0);

  /// One explicit fault: fires when rank, site and invocation all match
  /// (kAnyRank / empty site / kAnyInvocation are wildcards).
  struct Event {
    int rank = kAnyRank;
    std::string site;
    std::uint64_t invocation = kAnyInvocation;
    FaultAction action = FaultAction::kNone;
    std::chrono::milliseconds delay{0};
  };

  FaultPlan() = default;  // empty plan: decide() always returns kNone

  [[nodiscard]] bool empty() const noexcept {
    return events_.empty() && !random_;
  }

  /// Builder-style registration of explicit events; returns *this so plans
  /// read as one expression.
  FaultPlan& delay_at(int rank, std::string site, std::uint64_t invocation,
                      std::chrono::milliseconds delay);
  FaultPlan& drop_at(int rank, std::string site, std::uint64_t invocation);
  FaultPlan& abort_at(int rank, std::string site, std::uint64_t invocation);

  /// A probabilistic plan whose every decision is a pure function of
  /// (seed, rank, site, invocation) — deterministic across runs and across
  /// call orderings.
  [[nodiscard]] static FaultPlan random(std::uint64_t seed,
                                        const RandomFaultRates& rates);

  /// The core query: what happens to invocation `invocation` of `site` on
  /// `rank`? Pure and thread-safe (no internal state). Explicit events are
  /// checked first (registration order, first match wins), then the random
  /// component.
  [[nodiscard]] FaultDecision decide(int rank, std::string_view site,
                                     std::uint64_t invocation) const;

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }

 private:
  std::vector<Event> events_;
  bool random_ = false;
  std::uint64_t seed_ = 0;
  RandomFaultRates rates_;
};

/// Per-participant stateful handle over a FaultPlan: counts invocations per
/// site so call sites only name themselves ("allgatherv", "queue.push") and
/// get sequential invocation numbering for free. One injector per rank (or
/// per pipeline); the counters are mutex-guarded so a multi-worker stage can
/// share one. A null/empty plan makes every call a cheap no-op.
class FaultInjector {
 public:
  /// `plan` may be null (no faults) and is not owned; it must outlive the
  /// injector.
  FaultInjector(const FaultPlan* plan, int rank)
      : plan_(plan != nullptr && !plan->empty() ? plan : nullptr),
        rank_(rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] bool active() const noexcept { return plan_ != nullptr; }

  /// Returns the decision for the next invocation of `site` (bumping the
  /// site's counter) without acting on it.
  [[nodiscard]] FaultDecision next(std::string_view site);

  /// Applies the next decision for `site`: sleeps on kDelay, throws
  /// FaultAbort on kAbort, and returns false when the operation should be
  /// dropped (true otherwise).
  bool fire(std::string_view site);

  [[nodiscard]] std::uint64_t delays_injected() const noexcept {
    return delays_.load();
  }
  [[nodiscard]] std::uint64_t drops_injected() const noexcept {
    return drops_.load();
  }
  [[nodiscard]] std::uint64_t aborts_injected() const noexcept {
    return aborts_.load();
  }
  [[nodiscard]] std::uint64_t faults_injected() const noexcept {
    return delays_.load() + drops_.load() + aborts_.load();
  }

 private:
  const FaultPlan* plan_;
  int rank_;

  std::mutex mutex_;
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> aborts_{0};
};

}  // namespace jem::util
