// Fixed-size thread pool with a blocking task queue plus a parallel_for
// helper with static block partitioning. This is the shared-memory execution
// substrate for the threaded mapper (the paper's comparison point runs
// Mashmap with 64 threads; our threaded drivers use this pool).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace jem::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future resolves when it completes.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Statically partitions [begin, end) into `num_blocks` near-equal blocks and
/// invokes fn(block_index, block_begin, block_end) on the pool. Blocks until
/// all blocks complete. Block b gets the half-open range; sizes differ by at
/// most one.
void parallel_for_blocks(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    std::size_t num_blocks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

/// The half-open sub-range assigned to block `b` of `p` when dividing
/// [0, n) as evenly as possible (first n%p blocks get one extra element).
struct BlockRange {
  std::size_t begin;
  std::size_t end;
};
[[nodiscard]] constexpr BlockRange block_range(std::size_t n, std::size_t p,
                                               std::size_t b) noexcept {
  const std::size_t base = n / p;
  const std::size_t extra = n % p;
  const std::size_t begin = b * base + (b < extra ? b : extra);
  const std::size_t size = base + (b < extra ? 1 : 0);
  return {begin, begin + size};
}

}  // namespace jem::util
