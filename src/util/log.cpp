#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <iostream>
#include <utility>

namespace jem::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<int> g_format{static_cast<int>(LogFormat::kHuman)};
bool g_capturing = false;           // guarded by Log::mutex_
std::string g_captured;             // guarded by Log::mutex_

constexpr std::string_view level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kInfo:  return "[info ] ";
    case LogLevel::kWarn:  return "[warn ] ";
    case LogLevel::kError: return "[error] ";
    case LogLevel::kOff:   break;
  }
  return "[?    ] ";
}

constexpr std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo:  return "info";
    case LogLevel::kWarn:  return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff:   break;
  }
  return "?";
}

struct WallAnchor {
  std::chrono::system_clock::time_point wall;
  std::chrono::steady_clock::time_point steady;
};

/// Sampled once: later timestamps advance the anchor by the steady clock so
/// they are immune to wall-clock steps.
const WallAnchor& wall_anchor() {
  static const WallAnchor anchor{std::chrono::system_clock::now(),
                                 std::chrono::steady_clock::now()};
  return anchor;
}

/// Minimal JSON string escaping (quotes, backslash, control chars). Local so
/// jem_util keeps zero intra-project dependencies.
void append_json_escaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string render(LogLevel level, std::string_view msg, bool capturing) {
  std::string out;
  if (Log::format() == LogFormat::kJson) {
    out.reserve(msg.size() + 64);
    out += "{\"ts\":\"";
    out += Log::timestamp();
    out += "\",\"level\":\"";
    out += level_name(level);
    out += "\",\"msg\":\"";
    append_json_escaped(out, msg);
    out += "\"}";
  } else {
    out.reserve(msg.size() + 40);
    // Captured human output keeps the legacy `[level] msg` shape —
    // timestamped lines would break every test grepping captured logs.
    if (!capturing) {
      out += Log::timestamp();
      out += ' ';
    }
    out += level_tag(level);
    out += msg;
  }
  return out;
}

}  // namespace

std::mutex Log::mutex_;

void Log::set_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Log::level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Log::set_format(LogFormat format) noexcept {
  g_format.store(static_cast<int>(format), std::memory_order_relaxed);
}

LogFormat Log::format() noexcept {
  return static_cast<LogFormat>(g_format.load(std::memory_order_relaxed));
}

std::string Log::timestamp() {
  const WallAnchor& anchor = wall_anchor();
  const auto elapsed = std::chrono::steady_clock::now() - anchor.steady;
  const auto now = anchor.wall +
                   std::chrono::duration_cast<std::chrono::system_clock::duration>(
                       elapsed);
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto sub_second = now - std::chrono::system_clock::from_time_t(seconds);
  const auto millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(sub_second).count();
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buf[80];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(millis));
  return buf;
}

void Log::write(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(mutex_);
  const std::string line = render(level, msg, g_capturing);
  if (g_capturing) {
    g_captured.append(line);
    g_captured.push_back('\n');
  } else {
    std::cerr << line << '\n';
  }
}

std::string Log::begin_capture() {
  std::lock_guard lock(mutex_);
  g_capturing = true;
  return std::exchange(g_captured, std::string{});
}

std::string Log::end_capture() {
  std::lock_guard lock(mutex_);
  g_capturing = false;
  return std::exchange(g_captured, std::string{});
}

bool LogRateLimiter::allow(Clock::time_point now, std::uint64_t& suppressed) {
  std::lock_guard lock(mutex_);
  if (primed_ && now - last_ < period_) {
    ++suppressed_;
    suppressed = 0;
    return false;
  }
  primed_ = true;
  last_ = now;
  suppressed = std::exchange(suppressed_, 0);
  return true;
}

std::string LogRateLimiter::suffix(std::uint64_t suppressed) {
  if (suppressed == 0) return {};
  return " (" + std::to_string(suppressed) + " suppressed)";
}

}  // namespace jem::util
