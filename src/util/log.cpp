#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <utility>

namespace jem::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
bool g_capturing = false;           // guarded by Log::mutex_
std::string g_captured;             // guarded by Log::mutex_

constexpr std::string_view level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kInfo:  return "[info ] ";
    case LogLevel::kWarn:  return "[warn ] ";
    case LogLevel::kError: return "[error] ";
    case LogLevel::kOff:   break;
  }
  return "[?    ] ";
}
}  // namespace

std::mutex Log::mutex_;

void Log::set_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Log::level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Log::write(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(mutex_);
  if (g_capturing) {
    g_captured.append(level_tag(level));
    g_captured.append(msg);
    g_captured.push_back('\n');
  } else {
    std::cerr << level_tag(level) << msg << '\n';
  }
}

std::string Log::begin_capture() {
  std::lock_guard lock(mutex_);
  g_capturing = true;
  return std::exchange(g_captured, std::string{});
}

std::string Log::end_capture() {
  std::lock_guard lock(mutex_);
  g_capturing = false;
  return std::exchange(g_captured, std::string{});
}

}  // namespace jem::util
