// Small string helpers shared across modules: splitting, trimming, number
// formatting for the report tables, and human-readable byte/size rendering.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace jem::util {

/// Split on a single delimiter character. Adjacent delimiters yield empty
/// fields (CSV-style); the result always has (count of delim)+1 entries.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text,
                                                  char delim);

/// Trim ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// True if `text` starts with `prefix`.
[[nodiscard]] constexpr bool starts_with(std::string_view text,
                                         std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

/// Render a non-negative integer with thousands separators: 4641652 ->
/// "4,641,652". Used by the Table I printer.
[[nodiscard]] std::string with_commas(std::uint64_t value);

/// Fixed-point decimal rendering with the given number of fraction digits.
[[nodiscard]] std::string fixed(double value, int digits);

/// "12.3 Kbp" / "1.2 Mbp" style rendering of base-pair counts.
[[nodiscard]] std::string human_bp(std::uint64_t bp);

/// Uppercase an ASCII string in place and return it (for sequence
/// normalization).
[[nodiscard]] std::string to_upper(std::string_view text);

}  // namespace jem::util
