// jem — the subcommand front end (src/cli): `jem map`, `jem build-index`,
// `jem serve`, `jem probe`. Run with no arguments (or `jem help`) for the
// command listing; each command documents its own options via --help.
#include "cli/cli.hpp"

int main(int argc, const char** argv) { return jem::cli::dispatch(argc, argv); }
