// Hybrid scaffolding demo — the application the paper motivates (§I):
// long reads whose two end segments map to *different* contigs provide
// linking evidence, letting a scaffolder order and orient the short-read
// contigs. This example runs the full L2C mapping, extracts contig-pair
// links from reads whose prefix and suffix map to different contigs, builds
// a link graph, and emits scaffold chains by walking unambiguous links.
//
// Run:  ./hybrid_scaffold [--genome-bp N] [--coverage C] [--min-links L]
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/jem.hpp"
#include "scaffold/link_graph.hpp"
#include "scaffold/scaffolder.hpp"
#include "sim/contigs.hpp"
#include "sim/genome.hpp"
#include "sim/hifi_reads.hpp"
#include "util/options.hpp"
#include "util/string_util.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t genome_bp = 800'000;
  double coverage = 6.0;
  std::uint64_t min_links = 2;
  std::uint64_t seed = 7;
  util::Options options;
  options.add_uint("genome-bp", genome_bp, "simulated genome length");
  options.add_double("coverage", coverage, "HiFi read coverage");
  options.add_uint("min-links", min_links,
                   "minimum supporting reads per contig link");
  options.add_uint("seed", seed, "experiment seed");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("hybrid_scaffold");
    return 1;
  }

  // Simulate a fragmented assembly: shortish contigs with real gaps, which
  // is exactly where long-read links add value.
  sim::GenomeParams genome_params;
  genome_params.length = genome_bp;
  genome_params.seed = seed;
  const std::string genome = sim::simulate_genome(genome_params);

  sim::ContigSimParams contig_params;
  contig_params.mean_length = 5000;
  contig_params.sd_length = 4000;
  contig_params.coverage_fraction = 0.88;
  contig_params.seed = seed + 1;
  const sim::SimulatedContigs contigs =
      sim::simulate_contigs(genome, contig_params);

  sim::HiFiParams read_params;
  read_params.coverage = coverage;
  read_params.seed = seed + 2;
  const sim::SimulatedReads reads =
      sim::simulate_hifi_reads(genome, read_params);

  std::cout << "contigs: " << contigs.contigs.size()
            << ", reads: " << reads.reads.size() << "\n";

  // Map all end segments.
  core::MapParams params;
  params.seed = seed;
  const core::JemMapper mapper(contigs.contigs, params);
  const auto mappings = mapper.map_reads(reads.reads);

  // A read whose prefix and suffix map to different contigs links them.
  const scaffold::LinkGraph graph = scaffold::LinkGraph::from_mappings(mappings);
  const std::vector<scaffold::Link> links = graph.links(min_links);
  std::cout << "contig links with >= " << min_links
            << " supporting reads: " << links.size() << "\n";

  // Validate links against ground truth: a correct link joins two contigs
  // whose genome span could actually be bridged by one read (the linked
  // ends lie within a maximum read length of each other). A 10 Kbp read
  // routinely skips over small intervening contigs — that is the value of
  // the link, not an error.
  const std::uint64_t max_span = read_params.max_length;
  std::uint64_t correct = 0;
  for (const scaffold::Link& link : links) {
    const auto& ta = contigs.truth[link.a];
    const auto& tb = contigs.truth[link.b];
    const std::uint64_t span = std::max(ta.end, tb.end) -
                               std::min(ta.begin, tb.begin);
    if (span <= max_span) ++correct;
  }
  std::cout << "links bridgeable by a single read (span <= "
            << util::human_bp(max_span) << "): " << correct << " / "
            << links.size() << " ("
            << util::fixed(links.empty() ? 0.0
                                         : 100.0 * static_cast<double>(correct) /
                                               static_cast<double>(links.size()),
                           1)
            << " %)\n";

  // Build scaffolds with the library scaffolder (branch-aware chain walk).
  scaffold::ScaffolderParams sc_params;
  sc_params.min_support = min_links;
  const scaffold::ScaffoldSet scaffolds =
      scaffold::build_scaffolds(graph, contigs.contigs.size(), sc_params);
  std::cout << "scaffolds: " << scaffolds.scaffolds.size() << " total, "
            << scaffolds.multi_contig_count() << " multi-contig; largest "
            << scaffolds.largest() << " contigs; N50 "
            << scaffolds.n50_contigs() << " contigs\n";
  return 0;
}
