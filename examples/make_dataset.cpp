// make_dataset — materializes a simulated benchmark data set as files, so
// the jem_map CLI (and external tools) can be run on realistic inputs:
//
//   <prefix>_contigs.fa     the draft assembly (subjects)
//   <prefix>_reads.fq.gz    HiFi long reads (queries, gzip)
//   <prefix>_truth.tsv      ground-truth coordinates for both
//
// Run:  ./make_dataset --preset "E. coli" --cap-bp 1000000 --prefix ecoli
#include <fstream>
#include <iostream>
#include <sstream>

#include "io/fasta.hpp"
#include "io/gzip.hpp"
#include "sim/presets.hpp"
#include "util/options.hpp"
#include "util/string_util.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::string preset_name = "E. coli";
  std::string prefix = "dataset";
  std::uint64_t cap_bp = 1'000'000;
  std::uint64_t seed = 22;
  util::Options options;
  options.add_string("preset", preset_name,
                     "Table I preset name (e.g. \"E. coli\", \"Human chr 7\")");
  options.add_string("prefix", prefix, "output file prefix");
  options.add_uint("cap-bp", cap_bp, "max simulated genome bases");
  options.add_uint("seed", seed, "experiment seed");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("make_dataset");
    return 1;
  }

  sim::Dataset dataset;
  try {
    const sim::DatasetPreset& preset = sim::preset_by_name(preset_name);
    const double scale =
        std::min(1.0, static_cast<double>(cap_bp) /
                          static_cast<double>(preset.genome_length));
    dataset = sim::generate_dataset(preset, scale, seed);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\navailable presets:\n";
    for (const auto& preset : sim::table1_presets()) {
      std::cerr << "  \"" << preset.name << "\"\n";
    }
    return 1;
  }

  // Contigs as FASTA.
  const std::string contigs_path = prefix + "_contigs.fa";
  {
    std::ofstream out(contigs_path);
    io::write_fasta(out, dataset.contigs.contigs);
  }

  // Reads as gzip FASTQ.
  const std::string reads_path = prefix + "_reads.fq.gz";
  {
    std::ostringstream fastq;
    std::vector<io::SequenceRecord> records;
    records.reserve(dataset.reads.reads.size());
    for (io::SeqId id = 0; id < dataset.reads.reads.size(); ++id) {
      io::SequenceRecord rec;
      rec.name = std::string(dataset.reads.reads.name(id));
      rec.bases = std::string(dataset.reads.reads.bases(id));
      records.push_back(std::move(rec));
    }
    io::write_fastq(fastq, records);
    std::ofstream out(reads_path, std::ios::binary);
    const std::string compressed = io::gzip_compress(fastq.str());
    out.write(compressed.data(),
              static_cast<std::streamsize>(compressed.size()));
  }

  // Ground truth for both sets.
  const std::string truth_path = prefix + "_truth.tsv";
  {
    std::ofstream out(truth_path);
    out << "# type\tname\tgenome_begin\tgenome_end\treverse\n";
    for (io::SeqId id = 0; id < dataset.contigs.contigs.size(); ++id) {
      const sim::Interval& truth = dataset.contigs.truth[id];
      out << "contig\t" << dataset.contigs.contigs.name(id) << '\t'
          << truth.begin << '\t' << truth.end << '\t'
          << (dataset.contigs.reversed[id] ? 1 : 0) << '\n';
    }
    for (io::SeqId id = 0; id < dataset.reads.reads.size(); ++id) {
      const sim::ReadTruth& truth = dataset.reads.truth[id];
      out << "read\t" << dataset.reads.reads.name(id) << '\t'
          << truth.interval.begin << '\t' << truth.interval.end << '\t'
          << (truth.reverse ? 1 : 0) << '\n';
    }
  }

  std::cout << "wrote " << contigs_path << " ("
            << dataset.contigs.contigs.size() << " contigs, "
            << util::human_bp(dataset.contigs.contigs.total_bases())
            << "), " << reads_path << " (" << dataset.reads.reads.size()
            << " reads, "
            << util::human_bp(dataset.reads.reads.total_bases()) << "), "
            << truth_path << '\n';
  std::cout << "map them with:\n  jem_map --subjects " << contigs_path
            << " --queries " << reads_path << " --output mappings.tsv\n";
  return 0;
}
