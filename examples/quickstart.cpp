// Quickstart: the smallest end-to-end use of the JEM-mapper public API.
//
// 1. Simulate a tiny genome, a contig set (the "prior partial assembly"),
//    and HiFi long reads.
// 2. Build a JemMapper over the contigs (Algorithm 2's subject phase).
// 3. Map every read's end segments and print the first few mappings plus
//    precision/recall against the simulator's ground truth.
//
// Run:  ./quickstart [--genome-bp N] [--coverage C] [--seed S]
#include <cstdint>
#include <iostream>

#include "core/jem.hpp"
#include "eval/metrics.hpp"
#include "eval/truth.hpp"
#include "sim/contigs.hpp"
#include "sim/genome.hpp"
#include "sim/hifi_reads.hpp"
#include "util/options.hpp"
#include "util/string_util.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t genome_bp = 500'000;
  double coverage = 5.0;
  std::uint64_t seed = 42;
  util::Options options;
  options.add_uint("genome-bp", genome_bp, "simulated genome length");
  options.add_double("coverage", coverage, "HiFi read coverage");
  options.add_uint("seed", seed, "experiment seed");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("quickstart");
    return 1;
  }

  // --- 1. Simulate the inputs -------------------------------------------
  sim::GenomeParams genome_params;
  genome_params.length = genome_bp;
  genome_params.seed = seed;
  const std::string genome = sim::simulate_genome(genome_params);

  sim::ContigSimParams contig_params;
  contig_params.seed = seed + 1;
  const sim::SimulatedContigs contigs = sim::simulate_contigs(genome,
                                                              contig_params);

  sim::HiFiParams read_params;
  read_params.coverage = coverage;
  read_params.seed = seed + 2;
  const sim::SimulatedReads reads = sim::simulate_hifi_reads(genome,
                                                             read_params);

  std::cout << "genome   : " << util::human_bp(genome.size()) << "\n"
            << "contigs  : " << contigs.contigs.size() << " ("
            << util::human_bp(contigs.contigs.total_bases()) << ")\n"
            << "reads    : " << reads.reads.size() << " ("
            << util::human_bp(reads.reads.total_bases()) << ")\n\n";

  // --- 2. Build the mapper (paper defaults: k=16, w=100, T=30, l=1000) --
  const core::MapParams params = core::MapParams::make().seed(seed).build();
  const core::JemMapper mapper(contigs.contigs, params);
  std::cout << "sketch table: " << mapper.table().size() << " entries across "
            << params.trials << " trials\n\n";

  // --- 3. Map all end segments ------------------------------------------
  const auto mappings = mapper.map_reads(reads.reads);

  std::cout << "first mappings (query  end  ->  contig  votes/trials):\n";
  for (std::size_t i = 0; i < mappings.size() && i < 8; ++i) {
    const auto& m = mappings[i];
    std::cout << "  " << reads.reads.name(m.read) << "  "
              << core::read_end_tag(m.end) << "  ->  "
              << (m.result.mapped()
                      ? std::string(contigs.contigs.name(m.result.subject))
                      : std::string("*"))
              << "  " << m.result.votes << "/" << params.trials << '\n';
  }

  // --- 4. Score against ground truth -------------------------------------
  const eval::TruthSet truth(contigs.truth, reads.truth,
                             params.segment_length,
                             static_cast<std::uint32_t>(params.k));
  const eval::QualityCounts counts = eval::evaluate(mappings, truth);
  std::cout << "\nsegments  : " << counts.segments << "\nprecision : "
            << util::fixed(100.0 * counts.precision(), 2)
            << " %\nrecall    : " << util::fixed(100.0 * counts.recall(), 2)
            << " %\n";
  return 0;
}
