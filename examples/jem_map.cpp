// jem_map — deprecation shim over `jem map` (src/cli/cmd_map.cpp). The
// monolithic binary's whole body moved into cli::run_map when the CLI grew
// subcommands; this entry point keeps every existing `jem_map --subjects ...`
// invocation working bit-identically (the check.sh golden diff pins it).
// New scripts should call `jem map` directly.
#include <cstddef>

#include "cli/cli.hpp"

int main(int argc, const char** argv) {
  return jem::cli::run_map({argv + 1, static_cast<std::size_t>(argc - 1)},
                           "jem_map");
}
