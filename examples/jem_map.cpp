// jem_map — the command-line JEM-mapper tool: maps long reads (FASTA/FASTQ)
// to contigs (FASTA) and writes a tab-separated mapping, exactly the
// workflow of the paper's released software. Runs sequentially, threaded, or
// on the simulated distributed runtime.
//
//   jem_map --subjects contigs.fa --queries reads.fq --output out.tsv
//           [--k 16] [--w 100] [--trials 30] [--segment 1000]
//           [--ranks 4 | --threads 8] [--scheme jem|minhash]
//
// With --demo (no input files) it simulates a small dataset, maps it, and
// writes both the inputs and the mapping under --output-dir.
#include <fstream>
#include <iostream>
#include <iterator>
#include <optional>
#include <sstream>

#include "core/jem.hpp"
#include "io/gzip.hpp"
#include "io/stream_reader.hpp"
#include "sim/contigs.hpp"
#include "sim/genome.hpp"
#include "sim/hifi_reads.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::string subjects_path;
  std::string queries_path;
  std::string output_path = "mappings.tsv";
  std::string scheme_name = "jem";
  std::uint64_t k = 16;
  std::uint64_t w = 100;
  std::uint64_t trials = 30;
  std::uint64_t segment = 1000;
  std::uint64_t seed = 20230517;
  std::uint64_t ranks = 0;
  std::uint64_t threads = 0;
  bool demo = false;
  bool tiled = false;
  std::uint64_t batch = 0;
  std::string save_index;
  std::string load_index;

  util::Options options;
  options.add_string("subjects", subjects_path, "contigs FASTA path");
  options.add_string("queries", queries_path, "long-read FASTA/FASTQ path");
  options.add_string("output", output_path, "output mapping TSV path");
  options.add_string("scheme", scheme_name, "sketch scheme: jem | minhash");
  std::string ordering_name = "lex";
  options.add_string("ordering", ordering_name,
                     "minimizer ordering: lex | hash");
  options.add_uint("k", k, "k-mer size (default 16)");
  options.add_uint("w", w, "minimizer window in k-mers (default 100)");
  options.add_uint("trials", trials, "number of MinHash trials T (default 30)");
  options.add_uint("segment", segment, "end-segment length l (default 1000)");
  options.add_uint("seed", seed, "experiment seed");
  options.add_uint("ranks", ranks, "run distributed on this many ranks");
  bool partitioned = false;
  options.add_flag("partitioned", partitioned,
                   "with --ranks: shard the sketch table by k-mer instead "
                   "of replicating it (less memory, more communication)");
  options.add_uint("threads", threads, "run threaded with this many threads");
  options.add_flag("demo", demo, "simulate inputs instead of reading files");
  options.add_flag("tiled", tiled,
                   "containment mode: tile whole reads with l-length "
                   "segments (finds contigs inside read interiors)");
  options.add_uint("batch", batch,
                   "stream queries in batches of N reads (constant memory; "
                   "combine with --threads for the pipelined pool)");
  options.add_string("save-index", save_index,
                     "write the subject sketch table to this file");
  options.add_string("load-index", load_index,
                     "reuse a sketch table written by --save-index");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("jem_map");
    return 1;
  }

  io::SequenceSet subjects;
  io::SequenceSet reads;
  try {
    if (demo) {
      sim::GenomeParams genome_params;
      genome_params.length = 400'000;
      genome_params.seed = seed;
      const std::string genome = sim::simulate_genome(genome_params);
      sim::ContigSimParams contig_params;
      contig_params.seed = seed + 1;
      const auto contigs = sim::simulate_contigs(genome, contig_params);
      sim::HiFiParams read_params;
      read_params.coverage = 4.0;
      read_params.seed = seed + 2;
      const auto simulated = sim::simulate_hifi_reads(genome, read_params);
      for (io::SeqId id = 0; id < contigs.contigs.size(); ++id) {
        subjects.add(contigs.contigs.name(id), contigs.contigs.bases(id));
      }
      for (io::SeqId id = 0; id < simulated.reads.size(); ++id) {
        reads.add(simulated.reads.name(id), simulated.reads.bases(id));
      }
    } else {
      if (subjects_path.empty() || queries_path.empty()) {
        std::cerr << "error: --subjects and --queries are required "
                     "(or use --demo)\n"
                  << options.usage("jem_map");
        return 1;
      }
      io::load_into(subjects_path, subjects);
      if (batch == 0) io::load_into(queries_path, reads);
    }
  } catch (const std::exception& error) {
    std::cerr << "input error: " << error.what() << '\n';
    return 1;
  }

  core::MinimizerOrdering ordering = core::MinimizerOrdering::kLexicographic;
  if (ordering_name == "hash") {
    ordering = core::MinimizerOrdering::kRandomHash;
  } else if (ordering_name != "lex") {
    std::cerr << "error: unknown --ordering '" << ordering_name << "'\n";
    return 1;
  }

  core::MapParams params;
  try {
    params = core::MapParams::make()
                 .k(static_cast<int>(k))
                 .window(static_cast<int>(w))
                 .trials(static_cast<int>(trials))
                 .segment_length(static_cast<std::uint32_t>(segment))
                 .seed(seed)
                 .ordering(ordering)
                 .build();
  } catch (const std::invalid_argument& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }

  core::SketchScheme scheme = core::SketchScheme::kJem;
  if (scheme_name == "minhash") {
    scheme = core::SketchScheme::kClassicMinhash;
  } else if (scheme_name != "jem") {
    std::cerr << "error: unknown --scheme '" << scheme_name << "'\n";
    return 1;
  }

  util::log_info() << "subjects=" << subjects.size()
                   << " queries=" << reads.size() << " k=" << k << " w=" << w
                   << " T=" << trials << " l=" << segment;

  util::WallTimer timer;
  std::vector<io::MappingLine> lines;
  if (ranks > 0) {
    const core::DistributedResult result =
        partitioned
            ? core::run_distributed_partitioned(
                  subjects, reads, params, static_cast<int>(ranks), scheme)
            : core::run_distributed(subjects, reads, params,
                                    static_cast<int>(ranks), scheme);
    const core::JemMapper name_resolver(subjects, params, scheme,
                                        core::SketchTable(params.trials));
    lines = name_resolver.to_mapping_lines(reads, result.mappings);
    util::log_info() << "distributed (" << ranks << " ranks): total "
                     << result.report.total_s() << " s, allgather "
                     << result.report.allgather_s << " s";
  } else {
    std::optional<core::MappingEngine> engine;
    if (!load_index.empty()) {
      std::ifstream index_in(load_index, std::ios::binary);
      if (!index_in) {
        std::cerr << "error: cannot open index " << load_index << '\n';
        return 1;
      }
      engine.emplace(subjects, params, scheme,
                     core::SketchTable::load(index_in));
      util::log_info() << "loaded sketch table from " << load_index;
    } else {
      engine.emplace(subjects, params, scheme);
    }
    if (!save_index.empty()) {
      std::ofstream index_out(save_index, std::ios::binary);
      if (!index_out) {
        std::cerr << "error: cannot write index " << save_index << '\n';
        return 1;
      }
      engine->mapper().table().save(index_out);
      util::log_info() << "saved sketch table to " << save_index;
    }

    core::MapRequest request;
    request.mode = tiled ? core::MapMode::kTiled : core::MapMode::kEnds;
    request.backend =
        threads > 1 ? core::MapBackend::kPool : core::MapBackend::kSerial;
    request.threads = threads;
    request.batch_size = batch;

    core::EngineStats stats;
    try {
      if (batch > 0 && !demo) {
        // Streaming mode: constant memory in the query set. The engine
        // reads batches on this thread and maps them on the pool behind a
        // bounded queue, emitting results in input order. Parsing happens
        // lazily here, so parse errors surface from run_stream.
        std::istringstream stream(io::read_file_auto(queries_path));
        io::BatchStream batches(stream, batch);
        const core::JemMapper& mapper = engine->mapper();
        stats = engine->run_stream(
            batches, request,
            [&](const core::MappingEngine::BatchResult& result) {
              auto chunk_lines =
                  mapper.to_mapping_lines(result.batch.reads, result.mappings);
              lines.insert(lines.end(),
                           std::make_move_iterator(chunk_lines.begin()),
                           std::make_move_iterator(chunk_lines.end()));
            });
        util::log_info() << "streamed " << stats.reads
                         << " reads in batches of " << batch;
      } else {
        core::MapReport report = engine->run(reads, request);
        lines = engine->mapper().to_mapping_lines(reads, report.mappings);
        stats = report.stats;
      }
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << '\n';
      return 1;
    }
    util::log_info() << "engine: " << stats.batches << " batches, "
                     << stats.segments << " segments, "
                     << static_cast<std::uint64_t>(stats.segments_per_s())
                     << " segments/s (read " << stats.read_s << " s, map "
                     << stats.map_s << " s, emit " << stats.emit_s
                     << " s, queue-wait " << stats.queue_wait_s << " s)";
  }
  util::log_info() << "mapped " << lines.size() << " end segments in "
                   << timer.elapsed_s() << " s";

  std::ofstream out(output_path);
  if (!out) {
    std::cerr << "error: cannot write " << output_path << '\n';
    return 1;
  }
  io::write_mappings(out, lines);
  std::uint64_t mapped = 0;
  for (const auto& line : lines) {
    if (line.mapped()) ++mapped;
  }
  std::cout << "wrote " << lines.size() << " records (" << mapped
            << " mapped) to " << output_path << '\n';
  return 0;
}
