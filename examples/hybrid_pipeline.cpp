// hybrid_pipeline — the complete workflow the paper motivates, end to end:
//
//   1. inputs    : a draft short-read assembly (simulated contigs with
//                  gaps) and low-coverage HiFi long reads;
//   2. mapping   : distributed JEM-mapper (S1-S4) over p simulated ranks;
//   3. scaffolds : link graph from paired end-segment hits, branch-aware
//                  chain construction;
//   4. report    : assembly-contiguity gain (scaffold count / largest /
//                  N50 in contigs) plus alignment-verified mapping quality
//                  on a sample.
//
// Run:  ./hybrid_pipeline [--genome-bp N] [--coverage C] [--ranks P]
#include <cstdint>
#include <iostream>

#include "align/identity.hpp"
#include "core/jem.hpp"
#include "core/service.hpp"
#include "scaffold/link_graph.hpp"
#include "scaffold/scaffolder.hpp"
#include "sim/contigs.hpp"
#include "sim/genome.hpp"
#include "sim/hifi_reads.hpp"
#include "util/options.hpp"
#include "util/string_util.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t genome_bp = 800'000;
  double coverage = 6.0;
  std::uint64_t ranks = 4;
  std::uint64_t min_links = 2;
  std::uint64_t seed = 21;
  util::Options options;
  options.add_uint("genome-bp", genome_bp, "simulated genome length");
  options.add_double("coverage", coverage, "HiFi read coverage");
  options.add_uint("ranks", ranks, "simulated MPI ranks for the mapping");
  options.add_uint("min-links", min_links, "reads required per contig link");
  options.add_uint("seed", seed, "experiment seed");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("hybrid_pipeline");
    return 1;
  }

  // --- 1. Inputs ----------------------------------------------------------
  sim::GenomeParams genome_params;
  genome_params.length = genome_bp;
  genome_params.repeat_fraction = 0.08;
  genome_params.seed = seed;
  const std::string genome = sim::simulate_genome(genome_params);

  sim::ContigSimParams contig_params;
  contig_params.mean_length = 4000;
  contig_params.sd_length = 3500;
  contig_params.coverage_fraction = 0.9;
  contig_params.seed = seed + 1;
  const sim::SimulatedContigs contigs =
      sim::simulate_contigs(genome, contig_params);

  sim::HiFiParams read_params;
  read_params.coverage = coverage;
  read_params.seed = seed + 2;
  const sim::SimulatedReads reads =
      sim::simulate_hifi_reads(genome, read_params);

  std::cout << "inputs: " << util::human_bp(genome.size()) << " genome, "
            << contigs.contigs.size() << " contigs, " << reads.reads.size()
            << " HiFi reads (" << util::fixed(coverage, 1) << "x)\n";

  // --- 2. Distributed mapping --------------------------------------------
  // Params assembly goes through the validated ServiceConfig builder — the
  // same path `jem map` and `jem serve` use (core/service.hpp).
  const core::MapParams params =
      core::ServiceConfig::make().seed(seed).build().params;
  const core::DistributedResult mapped = core::run_distributed(
      contigs.contigs, reads.reads, params, static_cast<int>(ranks));
  std::uint64_t hits = 0;
  for (const core::SegmentMapping& m : mapped.mappings) {
    if (m.result.mapped()) ++hits;
  }
  std::cout << "mapping: " << mapped.mappings.size() << " end segments on "
            << ranks << " ranks, " << hits << " mapped; table "
            << util::with_commas(mapped.report.table_entries_max)
            << " entries/rank, allgather "
            << util::human_bp(mapped.report.sketch_bytes) << "\n";

  // --- 3. Scaffolding -----------------------------------------------------
  const scaffold::LinkGraph graph =
      scaffold::LinkGraph::from_mappings(mapped.mappings);
  scaffold::ScaffolderParams sc_params;
  sc_params.min_support = min_links;
  const scaffold::ScaffoldSet scaffolds = scaffold::build_scaffolds(
      graph, contigs.contigs.size(), sc_params);

  std::cout << "scaffolding: " << graph.edge_count() << " raw links, "
            << graph.links(min_links).size() << " trusted (>= " << min_links
            << " reads)\n";
  std::cout << "contiguity: " << contigs.contigs.size() << " contigs -> "
            << scaffolds.scaffolds.size() << " scaffolds (largest "
            << scaffolds.largest() << " contigs, N50 "
            << scaffolds.n50_contigs() << " contigs, "
            << scaffolds.multi_contig_count() << " multi-contig)\n";

  // --- 4. Verification sample ---------------------------------------------
  align::IdentityParams id_params;
  id_params.minimizer = {params.k, params.w};
  std::uint64_t verified = 0;
  std::uint64_t sampled = 0;
  for (const core::SegmentMapping& m : mapped.mappings) {
    if (!m.result.mapped() || sampled >= 100) continue;
    for (const core::EndSegment& segment : core::extract_end_segments(
             m.read, reads.reads.bases(m.read), params.segment_length)) {
      if (segment.end != m.end) continue;
      const auto identity = align::segment_identity(
          segment.bases, contigs.contigs.bases(m.result.subject), id_params);
      if (!identity.has_value()) continue;
      ++sampled;
      if (identity->identity >= 0.95) ++verified;
    }
  }
  std::cout << "verification: " << verified << "/" << sampled
            << " sampled mappings at >= 95 % alignment identity\n";
  return 0;
}
