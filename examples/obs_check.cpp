// Validates observability artifacts (docs/observability.md):
//
//   obs_check --metrics out.json      # metrics snapshot export
//   obs_check --trace out.trace.json  # Chrome trace_event export
//
// Checks that the file parses as JSON and satisfies the export schema:
// metrics files are one {"metrics":[...]} object whose entries carry a
// name/kind/unit and the kind's value fields; trace files are one
// {"traceEvents":[...]} object whose B/E pairs are matched per track (the
// invariant Perfetto needs). Exit 0 on success, 1 with a diagnostic on
// the first violation — scripts/check.sh runs this as the metrics-smoke
// step.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace {

using jem::obs::json::Value;

int fail(const std::string& path, const std::string& message) {
  std::cerr << "obs_check: " << path << ": " << message << '\n';
  return 1;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open file");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int check_metrics(const std::string& path) {
  const Value doc = jem::obs::json::parse(read_file(path));
  if (!doc.is_object()) return fail(path, "top level is not an object");
  const Value* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    return fail(path, "missing \"metrics\" array");
  }
  std::string previous_name;
  for (const Value& entry : metrics->array) {
    if (!entry.is_object()) return fail(path, "metric entry is not an object");
    const Value* name = entry.find("name");
    const Value* kind = entry.find("kind");
    const Value* unit = entry.find("unit");
    if (name == nullptr || !name->is_string() || name->str.empty()) {
      return fail(path, "metric entry without a name");
    }
    if (kind == nullptr || !kind->is_string() || unit == nullptr ||
        !unit->is_string()) {
      return fail(path, "metric '" + name->str + "' lacks kind/unit");
    }
    if (name->str <= previous_name) {
      return fail(path, "entries not strictly name-sorted at '" + name->str +
                            "'");
    }
    previous_name = name->str;
    if (kind->str == "counter" || kind->str == "gauge") {
      if (entry.find("value") == nullptr) {
        return fail(path, "metric '" + name->str + "' lacks a value");
      }
    } else if (kind->str == "histogram") {
      const Value* buckets = entry.find("buckets");
      if (entry.find("count") == nullptr || entry.find("sum") == nullptr ||
          buckets == nullptr || !buckets->is_array()) {
        return fail(path,
                    "histogram '" + name->str + "' lacks count/sum/buckets");
      }
    } else {
      return fail(path, "metric '" + name->str + "' has unknown kind '" +
                            kind->str + "'");
    }
  }
  std::cout << "obs_check: " << path << ": ok (" << metrics->array.size()
            << " metrics)\n";
  return 0;
}

int check_trace(const std::string& path) {
  const Value doc = jem::obs::json::parse(read_file(path));
  if (!doc.is_object()) return fail(path, "top level is not an object");
  const Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return fail(path, "missing \"traceEvents\" array");
  }
  std::map<double, int> depth_by_tid;
  std::size_t spans = 0;
  for (const Value& event : events->array) {
    if (!event.is_object()) return fail(path, "event is not an object");
    const Value* ph = event.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->str.empty()) {
      return fail(path, "event without a phase");
    }
    const Value* tid = event.find("tid");
    if (ph->str == "B") {
      if (tid == nullptr) return fail(path, "B event without a tid");
      if (event.find("name") == nullptr) {
        return fail(path, "B event without a name");
      }
      ++depth_by_tid[tid->number];
      ++spans;
    } else if (ph->str == "E") {
      if (tid == nullptr) return fail(path, "E event without a tid");
      if (--depth_by_tid[tid->number] < 0) {
        return fail(path, "E without a matching B on a track");
      }
    }
  }
  for (const auto& [tid, depth] : depth_by_tid) {
    if (depth != 0) {
      return fail(path, "unclosed span(s) on tid " +
                            std::to_string(static_cast<std::int64_t>(tid)));
    }
  }
  std::cout << "obs_check: " << path << ": ok (" << events->array.size()
            << " events, " << spans << " spans)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int rc = 0;
  bool checked = false;
  try {
    for (int i = 1; i + 1 < argc; i += 2) {
      const std::string flag = argv[i];
      const std::string path = argv[i + 1];
      if (flag == "--metrics") {
        rc |= check_metrics(path);
        checked = true;
      } else if (flag == "--trace") {
        rc |= check_trace(path);
        checked = true;
      } else {
        std::cerr << "obs_check: unknown flag '" << flag << "'\n";
        return 2;
      }
    }
  } catch (const std::exception& error) {
    std::cerr << "obs_check: " << error.what() << '\n';
    return 1;
  }
  if (!checked) {
    std::cerr << "usage: obs_check [--metrics out.json] "
                 "[--trace out.trace.json]\n";
    return 2;
  }
  return rc;
}
