// Validates observability artifacts (docs/observability.md):
//
//   obs_check --metrics out.json       # metrics snapshot export
//   obs_check --trace out.trace.json   # Chrome trace_event export
//   obs_check --openmetrics out.prom   # OpenMetrics text exposition
//   obs_check --flight flight.json     # /debug/requests dump
//
// Checks that the file parses as JSON and satisfies the export schema:
// metrics files are one {"metrics":[...]} object whose entries carry a
// name/kind/unit and the kind's value fields; trace files are one
// {"traceEvents":[...]} object whose B/E pairs are matched per track (the
// invariant Perfetto needs). Exit 0 on success, 1 with a diagnostic on
// the first violation — scripts/check.sh runs this as the metrics-smoke
// step.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace {

using jem::obs::json::Value;

int fail(const std::string& path, const std::string& message) {
  std::cerr << "obs_check: " << path << ": " << message << '\n';
  return 1;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open file");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int check_metrics(const std::string& path) {
  const Value doc = jem::obs::json::parse(read_file(path));
  if (!doc.is_object()) return fail(path, "top level is not an object");
  const Value* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    return fail(path, "missing \"metrics\" array");
  }
  std::string previous_name;
  for (const Value& entry : metrics->array) {
    if (!entry.is_object()) return fail(path, "metric entry is not an object");
    const Value* name = entry.find("name");
    const Value* kind = entry.find("kind");
    const Value* unit = entry.find("unit");
    if (name == nullptr || !name->is_string() || name->str.empty()) {
      return fail(path, "metric entry without a name");
    }
    if (kind == nullptr || !kind->is_string() || unit == nullptr ||
        !unit->is_string()) {
      return fail(path, "metric '" + name->str + "' lacks kind/unit");
    }
    if (name->str <= previous_name) {
      return fail(path, "entries not strictly name-sorted at '" + name->str +
                            "'");
    }
    previous_name = name->str;
    if (kind->str == "counter" || kind->str == "gauge") {
      if (entry.find("value") == nullptr) {
        return fail(path, "metric '" + name->str + "' lacks a value");
      }
    } else if (kind->str == "histogram") {
      const Value* buckets = entry.find("buckets");
      if (entry.find("count") == nullptr || entry.find("sum") == nullptr ||
          buckets == nullptr || !buckets->is_array()) {
        return fail(path,
                    "histogram '" + name->str + "' lacks count/sum/buckets");
      }
    } else {
      return fail(path, "metric '" + name->str + "' has unknown kind '" +
                            kind->str + "'");
    }
  }
  std::cout << "obs_check: " << path << ": ok (" << metrics->array.size()
            << " metrics)\n";
  return 0;
}

int check_trace(const std::string& path) {
  const Value doc = jem::obs::json::parse(read_file(path));
  if (!doc.is_object()) return fail(path, "top level is not an object");
  const Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return fail(path, "missing \"traceEvents\" array");
  }
  std::map<double, int> depth_by_tid;
  std::size_t spans = 0;
  for (const Value& event : events->array) {
    if (!event.is_object()) return fail(path, "event is not an object");
    const Value* ph = event.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->str.empty()) {
      return fail(path, "event without a phase");
    }
    const Value* tid = event.find("tid");
    if (ph->str == "B") {
      if (tid == nullptr) return fail(path, "B event without a tid");
      if (event.find("name") == nullptr) {
        return fail(path, "B event without a name");
      }
      ++depth_by_tid[tid->number];
      ++spans;
    } else if (ph->str == "E") {
      if (tid == nullptr) return fail(path, "E event without a tid");
      if (--depth_by_tid[tid->number] < 0) {
        return fail(path, "E without a matching B on a track");
      }
    }
  }
  for (const auto& [tid, depth] : depth_by_tid) {
    if (depth != 0) {
      return fail(path, "unclosed span(s) on tid " +
                            std::to_string(static_cast<std::int64_t>(tid)));
    }
  }
  std::cout << "obs_check: " << path << ": ok (" << events->array.size()
            << " events, " << spans << " spans)\n";
  return 0;
}

/// OpenMetrics text exposition: `# TYPE` coverage for every sample family,
/// non-decreasing cumulative `_bucket` series ending in le="+Inf", numeric
/// values, and the mandatory `# EOF` terminator.
int check_openmetrics(const std::string& path) {
  const std::string text = read_file(path);
  std::vector<std::string_view> lines;
  std::string_view rest = text;
  while (!rest.empty()) {
    const std::size_t eol = rest.find('\n');
    lines.push_back(rest.substr(0, eol));
    if (eol == std::string_view::npos) break;
    rest.remove_prefix(eol + 1);
  }
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty() || lines.back() != "# EOF") {
    return fail(path, "missing '# EOF' terminator");
  }
  lines.pop_back();

  std::map<std::string, std::string, std::less<>> families;  // name -> type
  std::set<std::string, std::less<>> sampled;
  struct BucketState {
    double last = -1.0;
    double inf_value = -1.0;
  };
  std::map<std::string, BucketState, std::less<>> buckets;
  std::size_t samples = 0;

  for (const std::string_view line : lines) {
    if (line.empty()) return fail(path, "blank line inside the exposition");
    if (line.front() == '#') {
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# UNIT ", 0) == 0) {
        continue;
      }
      if (line.rfind("# TYPE ", 0) != 0) {
        return fail(path, "unknown comment line: " + std::string(line));
      }
      const std::string_view decl = line.substr(7);
      const std::size_t space = decl.find(' ');
      if (space == std::string_view::npos) {
        return fail(path, "malformed # TYPE line: " + std::string(line));
      }
      const std::string family(decl.substr(0, space));
      const std::string type(decl.substr(space + 1));
      if (type != "counter" && type != "gauge" && type != "histogram") {
        return fail(path, "family '" + family + "' has unsupported type '" +
                              type + "'");
      }
      families[family] = type;
      continue;
    }

    // Sample line: name[{labels}] value
    ++samples;
    const std::size_t brace = line.find('{');
    const std::size_t name_end = std::min(brace, line.find(' '));
    if (name_end == std::string_view::npos) {
      return fail(path, "malformed sample line: " + std::string(line));
    }
    const std::string name(line.substr(0, name_end));
    std::string_view labels;
    std::string_view tail = line.substr(name_end);
    if (brace != std::string_view::npos && name_end == brace) {
      const std::size_t close = line.find('}', brace);
      if (close == std::string_view::npos) {
        return fail(path, "unterminated label set: " + std::string(line));
      }
      labels = line.substr(brace + 1, close - brace - 1);
      tail = line.substr(close + 1);
    }
    if (tail.empty() || tail.front() != ' ') {
      return fail(path, "sample without a value: " + std::string(line));
    }
    const std::string value_text(tail.substr(1));
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str() || *end != '\0') {
      return fail(path, "non-numeric value: " + std::string(line));
    }

    // Resolve the sample back to its declared family.
    std::string family;
    std::string suffix;
    for (const std::string_view candidate_suffix :
         {"_total", "_bucket", "_sum", "_count", ""}) {
      if (name.size() <= candidate_suffix.size()) continue;
      if (std::string_view(name).substr(name.size() -
                                        candidate_suffix.size()) !=
          candidate_suffix) {
        continue;
      }
      const std::string base =
          name.substr(0, name.size() - candidate_suffix.size());
      const auto it = families.find(base);
      if (it != families.end()) {
        family = base;
        suffix = std::string(candidate_suffix);
        break;
      }
    }
    if (family.empty()) {
      const auto it = families.find(name);
      if (it == families.end()) {
        return fail(path, "sample '" + name + "' has no # TYPE declaration");
      }
      family = name;
    }
    const std::string& type = families[family];
    if ((type == "counter" && suffix != "_total") ||
        (type == "gauge" && !suffix.empty()) ||
        (type == "histogram" &&
         (suffix != "_bucket" && suffix != "_sum" && suffix != "_count"))) {
      return fail(path, "sample '" + name + "' does not match type '" + type +
                            "' of family '" + family + "'");
    }
    sampled.insert(family);

    if (suffix == "_bucket") {
      BucketState& state = buckets[family];
      if (value + 1e-9 < state.last) {
        return fail(path, "non-monotonic _bucket series for '" + family +
                              "' at le bucket with count " + value_text);
      }
      state.last = value;
      if (labels.find("le=\"+Inf\"") != std::string_view::npos) {
        state.inf_value = value;
      }
    } else if (suffix == "_count") {
      const auto it = buckets.find(family);
      if (it == buckets.end() || it->second.inf_value < 0) {
        return fail(path, "histogram '" + family +
                              "' lacks an le=\"+Inf\" bucket");
      }
      if (it->second.inf_value != value) {
        return fail(path, "histogram '" + family +
                              "': +Inf bucket disagrees with _count");
      }
    }
  }

  for (const auto& [family, type] : families) {
    if (sampled.count(family) == 0) {
      return fail(path, "family '" + family + "' declared but never sampled");
    }
  }
  std::cout << "obs_check: " << path << ": ok (" << families.size()
            << " families, " << samples << " samples)\n";
  return 0;
}

/// /debug/requests dump: capacity/recorded header plus a newest-first
/// `requests` array whose records carry the ids and per-stage timings.
int check_flight(const std::string& path) {
  const Value doc = jem::obs::json::parse(read_file(path));
  if (!doc.is_object()) return fail(path, "top level is not an object");
  if (doc.find("capacity") == nullptr || doc.find("recorded") == nullptr) {
    return fail(path, "missing capacity/recorded");
  }
  const Value* requests = doc.find("requests");
  if (requests == nullptr || !requests->is_array()) {
    return fail(path, "missing \"requests\" array");
  }
  double previous_seq = -1.0;
  for (const Value& entry : requests->array) {
    if (!entry.is_object()) return fail(path, "record is not an object");
    const Value* seq = entry.find("seq");
    if (seq == nullptr) return fail(path, "record without a seq");
    if (previous_seq >= 0 && seq->number >= previous_seq) {
      return fail(path, "records not newest-first at seq " +
                            std::to_string(
                                static_cast<std::uint64_t>(seq->number)));
    }
    previous_seq = seq->number;
    for (const char* key : {"trace_id", "request_id", "endpoint"}) {
      const Value* field = entry.find(key);
      if (field == nullptr || !field->is_string()) {
        return fail(path, std::string("record without a ") + key);
      }
    }
    for (const char* key :
         {"status", "queue_wait_ns", "map_ns", "serialize_ns", "total_ns"}) {
      if (entry.find(key) == nullptr) {
        return fail(path, std::string("record without ") + key);
      }
    }
  }
  std::cout << "obs_check: " << path << ": ok (" << requests->array.size()
            << " flight records)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int rc = 0;
  bool checked = false;
  try {
    for (int i = 1; i + 1 < argc; i += 2) {
      const std::string flag = argv[i];
      const std::string path = argv[i + 1];
      if (flag == "--metrics") {
        rc |= check_metrics(path);
        checked = true;
      } else if (flag == "--trace") {
        rc |= check_trace(path);
        checked = true;
      } else if (flag == "--openmetrics") {
        rc |= check_openmetrics(path);
        checked = true;
      } else if (flag == "--flight") {
        rc |= check_flight(path);
        checked = true;
      } else {
        std::cerr << "obs_check: unknown flag '" << flag << "'\n";
        return 2;
      }
    }
  } catch (const std::exception& error) {
    std::cerr << "obs_check: " << error.what() << '\n';
    return 1;
  }
  if (!checked) {
    std::cerr << "usage: obs_check [--metrics out.json] "
                 "[--trace out.trace.json] [--openmetrics out.prom] "
                 "[--flight flight.json]\n";
    return 2;
  }
  return rc;
}
