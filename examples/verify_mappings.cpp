// verify_mappings — the productionized Fig 9 pipeline: given the contigs,
// the reads, and a mapping TSV produced by jem_map, verify every mapped
// end segment by exact local alignment (the paper used BLAST), print the
// percent-identity histogram, and optionally emit the verified alignments
// as SAM for downstream tools.
//
//   verify_mappings --subjects contigs.fa --queries reads.fq
//       --mappings mappings.tsv [--sam out.sam] [--max N]
#include <fstream>
#include <iostream>

#include "align/identity.hpp"
#include "core/jem.hpp"
#include "eval/report.hpp"
#include "io/sam.hpp"
#include "util/options.hpp"
#include "util/string_util.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::string subjects_path;
  std::string queries_path;
  std::string mappings_path;
  std::string sam_path;
  std::uint64_t max_records = 0;
  std::uint64_t k = 16;
  std::uint64_t w = 100;
  util::Options options;
  options.add_string("subjects", subjects_path, "contigs FASTA path");
  options.add_string("queries", queries_path, "long-read FASTA/FASTQ path");
  options.add_string("mappings", mappings_path, "mapping TSV from jem_map");
  options.add_string("sam", sam_path, "optional SAM output path");
  options.add_uint("max", max_records, "verify at most N mappings (0 = all)");
  options.add_uint("k", k, "k-mer size for the alignment anchor");
  options.add_uint("w", w, "minimizer window for the alignment anchor");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("verify_mappings");
    return 1;
  }
  if (subjects_path.empty() || queries_path.empty() ||
      mappings_path.empty()) {
    std::cerr << "error: --subjects, --queries and --mappings are required\n"
              << options.usage("verify_mappings");
    return 1;
  }

  io::SequenceSet subjects;
  io::SequenceSet reads;
  std::vector<io::MappingLine> lines;
  try {
    io::load_into(subjects_path, subjects);
    io::load_into(queries_path, reads);
    std::ifstream in(mappings_path);
    if (!in) throw std::runtime_error("cannot open " + mappings_path);
    lines = io::read_mappings(in);
  } catch (const std::exception& error) {
    std::cerr << "input error: " << error.what() << '\n';
    return 1;
  }

  align::IdentityParams id_params;
  id_params.minimizer = {static_cast<int>(k), static_cast<int>(w)};

  std::vector<double> identities;
  std::vector<io::SamRecord> sam_records;
  std::uint64_t verified = 0;
  std::uint64_t skipped = 0;
  for (const io::MappingLine& line : lines) {
    if (!line.mapped()) continue;
    if (max_records != 0 && verified >= max_records) break;
    const io::SeqId read = reads.find(line.query);
    const io::SeqId subject = subjects.find(line.subject);
    if (read == io::kInvalidSeqId || subject == io::kInvalidSeqId) {
      ++skipped;
      continue;
    }
    // Locate the segment this line describes.
    std::string_view segment;
    const auto segments = line.end == 'I'
                              ? core::extract_tiled_segments(
                                    read, reads.bases(read),
                                    line.segment_length)
                              : core::extract_end_segments(
                                    read, reads.bases(read),
                                    line.segment_length);
    for (const core::EndSegment& candidate : segments) {
      if (core::read_end_tag(candidate.end) == line.end) {
        segment = candidate.bases;
        break;
      }
    }
    if (segment.empty()) {
      ++skipped;
      continue;
    }

    const auto result = align::segment_identity(
        segment, subjects.bases(subject), id_params);
    if (!result.has_value()) {
      ++skipped;
      continue;
    }
    ++verified;
    identities.push_back(100.0 * result->identity);

    if (!sam_path.empty()) {
      io::SamRecord rec;
      rec.qname = line.query;
      rec.qname += '/';
      rec.qname += line.end;
      rec.flag = result->reverse ? io::SamRecord::kReverse : 0;
      rec.rname = line.subject;
      rec.pos = result->subject_begin + 1;  // SAM is 1-based
      rec.mapq = static_cast<std::uint32_t>(
          std::min(60.0, result->identity * 60.0));
      rec.cigar = align::cigar_string(result->cigar);
      rec.seq = result->reverse
                    ? core::reverse_complement(segment)
                    : std::string(segment);
      sam_records.push_back(std::move(rec));
    }
  }

  const auto bins = eval::make_histogram(identities, 80.0, 100.0, 10);
  std::cout << "verified " << verified << " mappings (" << skipped
            << " skipped)\n\n"
            << eval::render_histogram(bins);
  std::uint64_t above95 = 0;
  for (double identity : identities) {
    if (identity >= 95.0) ++above95;
  }
  std::cout << "\nidentity >= 95 %: " << above95 << " / " << identities.size()
            << " ("
            << util::fixed(identities.empty()
                               ? 0.0
                               : 100.0 * static_cast<double>(above95) /
                                     static_cast<double>(identities.size()),
                           1)
            << " %)\n";

  if (!sam_path.empty()) {
    std::ofstream sam(sam_path);
    if (!sam) {
      std::cerr << "error: cannot write " << sam_path << '\n';
      return 1;
    }
    io::write_sam_header(sam, subjects);
    io::write_sam_records(sam, sam_records);
    std::cout << "wrote " << sam_records.size() << " SAM records to "
              << sam_path << '\n';
  }
  return 0;
}
