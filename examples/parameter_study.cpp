// Parameter study: how the JEM-mapper quality responds to its three knobs —
// trials T, minimizer window w, and end-segment length ℓ — on one simulated
// genome. A compact version of the paper's Fig 6 exploration plus the
// window/segment ablations DESIGN.md calls out, exposed through the public
// API so users can rerun it on their own parameter ranges.
//
// Run:  ./parameter_study [--genome-bp N] [--seed S]
#include <cstdint>
#include <iostream>

#include "core/jem.hpp"
#include "core/service.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "eval/truth.hpp"
#include "sim/contigs.hpp"
#include "sim/genome.hpp"
#include "sim/hifi_reads.hpp"
#include "util/options.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace {

struct Inputs {
  jem::sim::SimulatedContigs contigs;
  jem::sim::SimulatedReads reads;
};

Inputs make_inputs(std::uint64_t genome_bp, std::uint64_t seed) {
  jem::sim::GenomeParams genome_params;
  genome_params.length = genome_bp;
  genome_params.repeat_fraction = 0.10;
  genome_params.seed = seed;
  const std::string genome = jem::sim::simulate_genome(genome_params);

  jem::sim::ContigSimParams contig_params;
  contig_params.seed = seed + 1;
  jem::sim::HiFiParams read_params;
  read_params.coverage = 4.0;
  read_params.seed = seed + 2;
  return {jem::sim::simulate_contigs(genome, contig_params),
          jem::sim::simulate_hifi_reads(genome, read_params)};
}

void run_sweep(const Inputs& inputs, const std::string& title,
               const std::vector<jem::core::MapParams>& configs,
               const std::vector<std::string>& labels) {
  using namespace jem;
  eval::TextTable table({title, "Precision %", "Recall %", "Map time s"});
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const core::MapParams& params = configs[i];
    const eval::TruthSet truth(inputs.contigs.truth, inputs.reads.truth,
                               params.segment_length,
                               static_cast<std::uint32_t>(params.k));
    const core::JemMapper mapper(inputs.contigs.contigs, params);
    util::WallTimer timer;
    const auto mappings = mapper.map_reads(inputs.reads.reads);
    const double map_s = timer.elapsed_s();
    const eval::QualityCounts counts = eval::evaluate(mappings, truth);
    table.add_row({labels[i], util::fixed(100.0 * counts.precision(), 2),
                   util::fixed(100.0 * counts.recall(), 2),
                   util::fixed(map_s, 2)});
  }
  std::cout << table.to_string() << '\n';
}

}  // namespace

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t genome_bp = 600'000;
  std::uint64_t seed = 11;
  util::Options options;
  options.add_uint("genome-bp", genome_bp, "simulated genome length");
  options.add_uint("seed", seed, "experiment seed");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("parameter_study");
    return 1;
  }

  const Inputs inputs = make_inputs(genome_bp, seed);
  std::cout << "inputs: " << inputs.contigs.contigs.size() << " contigs, "
            << inputs.reads.reads.size() << " reads\n\n";

  // Every swept configuration is assembled by the validated ServiceConfig
  // builder (core/service.hpp) — the one params path all front ends share.
  const auto with_seed = [&] { return core::ServiceConfig::make().seed(seed); };

  {
    std::vector<core::MapParams> configs;
    std::vector<std::string> labels;
    for (std::uint64_t trials : {5u, 10u, 20u, 30u, 50u}) {
      configs.push_back(with_seed().trials(trials).build().params);
      labels.push_back("T=" + std::to_string(trials));
    }
    run_sweep(inputs, "Trials", configs, labels);
  }
  {
    std::vector<core::MapParams> configs;
    std::vector<std::string> labels;
    for (std::uint64_t w : {20u, 50u, 100u, 200u}) {
      configs.push_back(with_seed().window(w).build().params);
      labels.push_back("w=" + std::to_string(w));
    }
    run_sweep(inputs, "Window", configs, labels);
  }
  {
    std::vector<core::MapParams> configs;
    std::vector<std::string> labels;
    for (std::uint64_t ell : {500u, 1000u, 2000u}) {
      configs.push_back(with_seed().segment_length(ell).build().params);
      labels.push_back("l=" + std::to_string(ell));
    }
    run_sweep(inputs, "Segment", configs, labels);
  }
  return 0;
}
